/**
 * @file
 * cfd — CFD solver (Unstructured Grid / Fluid Dynamics).
 *
 * A fixed number of solver iterations, each running three dependent
 * kernels (step factor, flux, time step).  Vulkan must bind three
 * compute pipelines per iteration inside its command buffer — the
 * overhead the paper identifies as eroding cfd's command-buffer
 * savings; iteration count does not grow with input size, so neither
 * does the speedup (Sec. V-A2).
 *
 * Mobile: skipped entirely — the paper reports the cfd datasets do
 * not fit on either mobile platform.
 */

#include "suite/benchmark.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

constexpr uint32_t iterations = 20; // Rodinia runs 2000; scaled
constexpr float rkFactor = 0.8f;

struct Mesh
{
    uint32_t n = 0;
    std::vector<float> variables;  // 5n (SoA)
    std::vector<float> areas;      // n
    std::vector<int32_t> neighbors; // 4n (SoA; -1 = boundary)
    std::vector<float> normals;    // 4n
};

Mesh
generateMesh(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Mesh m;
    m.n = n;
    m.variables.resize(5ull * n);
    m.areas.resize(n);
    m.neighbors.resize(4ull * n);
    m.normals.resize(4ull * n);
    uint32_t width = 1;
    while (width * width < n)
        ++width;
    for (uint32_t i = 0; i < n; ++i) {
        m.variables[i] = rng.nextFloat(1.0f, 2.0f);               // rho
        m.variables[n + i] = rng.nextFloat(-0.5f, 0.5f);          // mx
        m.variables[2ull * n + i] = rng.nextFloat(-0.5f, 0.5f);   // my
        m.variables[3ull * n + i] = rng.nextFloat(-0.5f, 0.5f);   // mz
        m.variables[4ull * n + i] = rng.nextFloat(2.0f, 3.0f);    // E
        m.areas[i] = rng.nextFloat(0.5f, 2.0f);
        int64_t cand[4] = {int64_t(i) - 1, int64_t(i) + 1,
                           int64_t(i) - width, int64_t(i) + width};
        for (uint32_t nb = 0; nb < 4; ++nb) {
            m.neighbors[uint64_t(nb) * n + i] =
                (cand[nb] >= 0 && cand[nb] < int64_t(n))
                    ? static_cast<int32_t>(cand[nb])
                    : -1;
            m.normals[uint64_t(nb) * n + i] = rng.nextFloat(0.5f, 1.5f);
        }
    }
    return m;
}

/** CPU reference mirroring the three kernels' float order. */
std::vector<float>
referenceCfd(const Mesh &mesh)
{
    uint32_t n = mesh.n;
    std::vector<float> var = mesh.variables;
    std::vector<float> sf(n), flux(5ull * n);
    for (uint32_t it = 0; it < iterations; ++it) {
        for (uint32_t i = 0; i < n; ++i) {
            float rho = std::fmax(var[i], 1e-6f);
            float mx = var[n + i], my = var[2ull * n + i],
                  mz = var[3ull * n + i];
            float e = var[4ull * n + i];
            float m2 = std::fma(mx, mx, std::fma(my, my, mz * mz));
            float v2 = m2 / (rho * rho);
            float p = 0.4f * (e - 0.5f * (rho * v2));
            p = std::fmax(p, 1e-6f);
            float c = std::sqrt(1.4f * p / rho);
            float speed = std::sqrt(v2);
            float area = std::fmax(mesh.areas[i], 1e-6f);
            sf[i] = 0.5f / (std::sqrt(area) * (speed + c));
        }
        for (uint32_t i = 0; i < n; ++i) {
            float acc[5] = {0, 0, 0, 0, 0};
            for (uint32_t nb = 0; nb < 4; ++nb) {
                int32_t j = mesh.neighbors[uint64_t(nb) * n + i];
                if (j < 0)
                    continue;
                float w = mesh.normals[uint64_t(nb) * n + i];
                float weight =
                    (0.12f * std::sqrt(w)) / (1.0f + w);
                for (uint32_t v = 0; v < 5; ++v) {
                    float diff = var[uint64_t(v) * n + uint32_t(j)] -
                                 var[uint64_t(v) * n + i];
                    acc[v] = std::fma(diff, weight, acc[v]);
                }
            }
            for (uint32_t v = 0; v < 5; ++v)
                flux[uint64_t(v) * n + i] = acc[v];
        }
        for (uint32_t i = 0; i < n; ++i) {
            float factor = rkFactor * sf[i];
            for (uint32_t v = 0; v < 5; ++v)
                var[uint64_t(v) * n + i] =
                    std::fma(factor, flux[uint64_t(v) * n + i],
                             var[uint64_t(v) * n + i]);
        }
    }
    return var;
}

RunResult
finish(RunResult res, const Mesh &mesh, std::vector<float> var)
{
    res.validationError =
        compareFloats(var, referenceCfd(mesh), 1e-3, 1e-4);
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const Mesh &mesh)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k_sf, k_flux, k_ts;
    std::string err =
        createVkKernel(ctx, kernels::buildCfdStepFactor(), &k_sf);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildCfdComputeFlux(),
                             &k_flux);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildCfdTimeStep(), &k_ts);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint32_t n = mesh.n;
    auto b_var = ctx.createDeviceBuffer(5ull * n * 4);
    auto b_area = ctx.createDeviceBuffer(uint64_t(n) * 4);
    auto b_nb = ctx.createDeviceBuffer(4ull * n * 4);
    auto b_norm = ctx.createDeviceBuffer(4ull * n * 4);
    auto b_sf = ctx.createDeviceBuffer(uint64_t(n) * 4);
    auto b_flux = ctx.createDeviceBuffer(5ull * n * 4);
    ctx.upload(b_var, mesh.variables.data(), 5ull * n * 4);
    ctx.upload(b_area, mesh.areas.data(), uint64_t(n) * 4);
    ctx.upload(b_nb, mesh.neighbors.data(), 4ull * n * 4);
    ctx.upload(b_norm, mesh.normals.data(), 4ull * n * 4);

    auto s_sf = makeDescriptorSet(ctx, k_sf,
                                  {{0, b_var}, {1, b_area}, {2, b_sf}});
    auto s_flux = makeDescriptorSet(
        ctx, k_flux, {{0, b_var}, {1, b_nb}, {2, b_norm}, {3, b_flux}});
    auto s_ts = makeDescriptorSet(ctx, k_ts,
                                  {{0, b_var}, {1, b_sf}, {2, b_flux}});

    uint32_t groups = (uint32_t)ceilDiv(n, 128);
    uint32_t push_ts[2] = {n, 0};
    std::memcpy(&push_ts[1], &rkFactor, 4);

    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    for (uint32_t it = 0; it < iterations; ++it) {
        // Three pipeline binds per iteration — cfd's Vulkan tax.
        vkm::cmdBindPipeline(cb, k_sf.pipeline);
        vkm::cmdBindDescriptorSet(cb, k_sf.layout, 0, s_sf);
        vkm::cmdPushConstants(cb, k_sf.layout, 0, 4, &n);
        vkm::cmdDispatch(cb, groups, 1, 1);
        vkm::cmdPipelineBarrier(cb);
        vkm::cmdBindPipeline(cb, k_flux.pipeline);
        vkm::cmdBindDescriptorSet(cb, k_flux.layout, 0, s_flux);
        vkm::cmdPushConstants(cb, k_flux.layout, 0, 4, &n);
        vkm::cmdDispatch(cb, groups, 1, 1);
        vkm::cmdPipelineBarrier(cb);
        vkm::cmdBindPipeline(cb, k_ts.pipeline);
        vkm::cmdBindDescriptorSet(cb, k_ts.layout, 0, s_ts);
        vkm::cmdPushConstants(cb, k_ts.layout, 0, 8, push_ts);
        vkm::cmdDispatch(cb, groups, 1, 1);
        vkm::cmdPipelineBarrier(cb);
        res.launches += 3;
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    double t0 = ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    res.kernelRegionNs = ctx.now() - t0;

    std::vector<float> var(5ull * n);
    ctx.download(b_var, var.data(), 5ull * n * 4);
    res.totalNs = ctx.now() - t_total0;
    return finish(std::move(res), mesh, std::move(var));
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Mesh &mesh)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto p1 = ocl::createProgramWithSource(ctx,
                                           kernels::buildCfdStepFactor());
    auto p2 = ocl::createProgramWithSource(
        ctx, kernels::buildCfdComputeFlux());
    auto p3 = ocl::createProgramWithSource(ctx,
                                           kernels::buildCfdTimeStep());
    std::string err;
    if (!ocl::buildProgram(p1, &err) || !ocl::buildProgram(p2, &err) ||
        !ocl::buildProgram(p3, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k_sf = ocl::createKernel(p1, "cfd_compute_step_factor", &err);
    auto k_flux = ocl::createKernel(p2, "cfd_compute_flux", &err);
    auto k_ts = ocl::createKernel(p3, "cfd_time_step", &err);
    VCB_ASSERT(k_sf.valid() && k_flux.valid() && k_ts.valid(),
               "kernel creation failed: %s", err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint32_t n = mesh.n;
    auto b_var = ocl::createBuffer(ctx, ocl::MemReadWrite, 5ull * n * 4);
    auto b_area = ocl::createBuffer(ctx, ocl::MemReadOnly,
                                    uint64_t(n) * 4);
    auto b_nb = ocl::createBuffer(ctx, ocl::MemReadOnly, 4ull * n * 4);
    auto b_norm = ocl::createBuffer(ctx, ocl::MemReadOnly, 4ull * n * 4);
    auto b_sf = ocl::createBuffer(ctx, ocl::MemReadWrite,
                                  uint64_t(n) * 4);
    auto b_flux = ocl::createBuffer(ctx, ocl::MemReadWrite,
                                    5ull * n * 4);
    ocl::enqueueWriteBuffer(ctx, b_var, true, 0, 5ull * n * 4,
                            mesh.variables.data());
    ocl::enqueueWriteBuffer(ctx, b_area, true, 0, uint64_t(n) * 4,
                            mesh.areas.data());
    ocl::enqueueWriteBuffer(ctx, b_nb, true, 0, 4ull * n * 4,
                            mesh.neighbors.data());
    ocl::enqueueWriteBuffer(ctx, b_norm, true, 0, 4ull * n * 4,
                            mesh.normals.data());

    ocl::setKernelArgBuffer(k_sf, 0, b_var);
    ocl::setKernelArgBuffer(k_sf, 1, b_area);
    ocl::setKernelArgBuffer(k_sf, 2, b_sf);
    ocl::setKernelArgScalar(k_sf, 0, n);
    ocl::setKernelArgBuffer(k_flux, 0, b_var);
    ocl::setKernelArgBuffer(k_flux, 1, b_nb);
    ocl::setKernelArgBuffer(k_flux, 2, b_norm);
    ocl::setKernelArgBuffer(k_flux, 3, b_flux);
    ocl::setKernelArgScalar(k_flux, 0, n);
    ocl::setKernelArgBuffer(k_ts, 0, b_var);
    ocl::setKernelArgBuffer(k_ts, 1, b_sf);
    ocl::setKernelArgBuffer(k_ts, 2, b_flux);
    ocl::setKernelArgScalar(k_ts, 0, n);
    ocl::setKernelArgScalarF(k_ts, 1, rkFactor);

    uint32_t global = (uint32_t)ceilDiv(n, 128) * 128;

    double t0 = ctx.hostNowNs();
    for (uint32_t it = 0; it < iterations; ++it) {
        ocl::enqueueNDRangeKernel(ctx, k_sf, global);
        ocl::enqueueNDRangeKernel(ctx, k_flux, global);
        ocl::enqueueNDRangeKernel(ctx, k_ts, global);
        res.launches += 3;
        ctx.finish();
    }
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    std::vector<float> var(5ull * n);
    ocl::enqueueReadBuffer(ctx, b_var, true, 0, 5ull * n * 4,
                           var.data());
    res.totalNs = ctx.hostNowNs() - t_total0;
    return finish(std::move(res), mesh, std::move(var));
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Mesh &mesh)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f_sf = rt.loadFunction(kernels::buildCfdStepFactor());
    auto f_flux = rt.loadFunction(kernels::buildCfdComputeFlux());
    auto f_ts = rt.loadFunction(kernels::buildCfdTimeStep());

    double t_total0 = rt.hostNowNs();
    uint32_t n = mesh.n;
    auto d_var = rt.malloc(5ull * n * 4);
    auto d_area = rt.malloc(uint64_t(n) * 4);
    auto d_nb = rt.malloc(4ull * n * 4);
    auto d_norm = rt.malloc(4ull * n * 4);
    auto d_sf = rt.malloc(uint64_t(n) * 4);
    auto d_flux = rt.malloc(5ull * n * 4);
    rt.memcpyHtoD(d_var, mesh.variables.data(), 5ull * n * 4);
    rt.memcpyHtoD(d_area, mesh.areas.data(), uint64_t(n) * 4);
    rt.memcpyHtoD(d_nb, mesh.neighbors.data(), 4ull * n * 4);
    rt.memcpyHtoD(d_norm, mesh.normals.data(), 4ull * n * 4);

    uint32_t rk_bits;
    std::memcpy(&rk_bits, &rkFactor, 4);
    uint32_t groups = (uint32_t)ceilDiv(n, 128);

    double t0 = rt.hostNowNs();
    for (uint32_t it = 0; it < iterations; ++it) {
        rt.launchKernel(f_sf, groups, 1, 1, {d_var, d_area, d_sf}, {n});
        rt.launchKernel(f_flux, groups, 1, 1,
                        {d_var, d_nb, d_norm, d_flux}, {n});
        rt.launchKernel(f_ts, groups, 1, 1, {d_var, d_sf, d_flux},
                        {n, rk_bits});
        res.launches += 3;
        rt.deviceSynchronize();
    }
    res.kernelRegionNs = rt.hostNowNs() - t0;

    std::vector<float> var(5ull * n);
    rt.memcpyDtoH(var.data(), d_var, 5ull * n * 4);
    res.totalNs = rt.hostNowNs() - t_total0;
    return finish(std::move(res), mesh, std::move(var));
}

class CfdBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "cfd"; }
    std::string fullName() const override { return "CFD Solver"; }
    std::string dwarf() const override { return "Unstructured Grid"; }
    std::string domain() const override { return "Fluid Dynamics"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: fvcorr domains with 97K / 193K / 232K elements.
        return {{"97K", {24576}}, {"193K", {49152}}, {"232K", {61440}}};
    }
    std::vector<SizeConfig> mobileSizes() const override { return {}; }
    std::string mobileSkipReason() const override
    {
        return "dataset exceeds mobile device-local heap (paper: 'cfd "
               "could not fit on both platforms')";
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Mesh m = generateMesh(static_cast<uint32_t>(cfg.params[0]),
                              workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, m);
          case sim::Api::OpenCl:
            return runOpenCl(dev, m);
          case sim::Api::Cuda:
            return runCuda(dev, m);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeCfd()
{
    static CfdBenchmark b;
    return &b;
}

} // namespace vcb::suite

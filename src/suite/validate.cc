#include "suite/validate.h"

#include <cmath>

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "kernels/kernels.h"
#include "sim/engine.h"
#include "sim/kernel.h"
#include "suite/workloads.h"

namespace vcb::suite {

std::string
compareFloats(const std::vector<float> &got,
              const std::vector<float> &expect, double rel_tol,
              double abs_tol)
{
    if (got.size() != expect.size())
        return strprintf("size mismatch: got %zu, expected %zu",
                         got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
        double g = got[i], e = expect[i];
        if (std::isnan(g) != std::isnan(e))
            return strprintf("[%zu]: got %g, expected %g (NaN mismatch)",
                             i, g, e);
        if (std::isnan(g))
            continue;
        double err = std::abs(g - e);
        double bound = abs_tol + rel_tol * std::abs(e);
        if (err > bound)
            return strprintf("[%zu]: got %.7g, expected %.7g (err %.3g "
                             "> bound %.3g)",
                             i, g, e, err, bound);
    }
    return "";
}

std::string
compareInts(const std::vector<int32_t> &got,
            const std::vector<int32_t> &expect)
{
    if (got.size() != expect.size())
        return strprintf("size mismatch: got %zu, expected %zu",
                         got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
        if (got[i] != expect[i])
            return strprintf("[%zu]: got %d, expected %d", i, got[i],
                             expect[i]);
    }
    return "";
}

// ---------------------------------------------------------------------------
// Golden-reference scenarios.
//
// Each builder below synthesises a deterministic seeded workload,
// computes a from-scratch CPU reference mirroring the kernel's
// documented arithmetic (same operation order, so float results stay
// within a tight tolerance of the interpreter), and schedules the
// host-driven dispatch sequence the real benchmark would issue.
// ---------------------------------------------------------------------------

namespace {

using spirv::ElemType;

// wordsOf / floatsOf / intsOf come from suite/workloads.h — the same
// conversions the bench drivers use.

uint32_t
fbits(float v)
{
    return std::bit_cast<uint32_t>(v);
}

GoldenStep
makeStep(size_t module, uint32_t gx, uint32_t gy,
         std::vector<uint32_t> push, std::vector<size_t> buffers)
{
    GoldenStep s;
    s.module = module;
    s.groups[0] = gx;
    s.groups[1] = gy;
    s.push = std::move(push);
    s.buffers = std::move(buffers);
    return s;
}

std::vector<float>
randomFloats(Rng &rng, size_t n, float lo, float hi)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.nextFloat(lo, hi);
    return v;
}

GoldenScenario
makeVecAddScenario()
{
    constexpr uint32_t n = 1000;
    Rng rng(0x9001);
    GoldenScenario s;
    s.name = "vectorAdd";
    s.modules = {kernels::buildVecAdd()};
    auto x = randomFloats(rng, n, -100.0f, 100.0f);
    auto y = randomFloats(rng, n, -100.0f, 100.0f);
    s.buffers = {wordsOf(x), wordsOf(y),
                 std::vector<uint32_t>(n, fbits(0.0f))};
    s.steps = {makeStep(0, (uint32_t)ceilDiv(n, 256), 1, {n}, {0, 1, 2})};
    std::vector<float> z(n);
    for (uint32_t i = 0; i < n; ++i)
        z[i] = x[i] + y[i];
    s.checks = {{2, ElemType::F32, wordsOf(z), 1e-4, 1e-5}};
    return s;
}

GoldenScenario
makeStridedReadScenario()
{
    // rounds == window size (8), so every lane reads each of its 8
    // window cells exactly once.
    constexpr uint32_t threads = 512, stride = 3, rounds = 8;
    constexpr float sentinel = 123456789.0f; // the kernel's guard value
    Rng rng(0x9002);
    GoldenScenario s;
    s.name = "stridedRead";
    s.modules = {kernels::buildStridedRead()};
    auto src = randomFloats(rng, size_t(8) * threads * stride, 0.0f, 1.0f);
    // Plant the sentinel in lane 0's window: one cell holds it, the
    // other seven are exactly zero, so a correct implementation sums
    // to exactly the sentinel and takes the guarded store.  Any
    // mis-addressed load (wrong stride, wrong row, wrong lane base)
    // picks up a random cell instead and leaves the guard untouched.
    for (uint32_t r = 0; r < 8; ++r)
        src[size_t(r) * threads * stride] = r == 3 ? sentinel : 0.0f;
    s.buffers = {wordsOf(src), {fbits(0.0f)}};
    s.steps = {makeStep(0, threads / 256, 1, {stride, rounds, threads},
                        {0, 1})};
    s.checks = {{1, ElemType::F32, {fbits(sentinel)}, 0.0, 0.0}};
    return s;
}

GoldenScenario
makeBackpropLayerForwardScenario()
{
    constexpr uint32_t n = 100;
    const uint32_t blocks = (uint32_t)ceilDiv(n, 16);
    Rng rng(0x9003);
    GoldenScenario s;
    s.name = "backprop_layerforward";
    s.modules = {kernels::buildBackpropLayerForward()};
    auto input = randomFloats(rng, n, -1.0f, 1.0f);
    auto weights = randomFloats(rng, size_t(n) * 16, -1.0f, 1.0f);
    s.buffers = {wordsOf(input), wordsOf(weights),
                 std::vector<uint32_t>(size_t(blocks) * 16, fbits(0.0f))};
    s.steps = {makeStep(0, blocks, 1, {n}, {0, 1, 2})};

    // Reference mirrors the kernel's shared-memory tree reduction so
    // the partial sums match bit-for-bit in operation order.
    std::vector<float> partial(size_t(blocks) * 16);
    for (uint32_t blk = 0; blk < blocks; ++blk) {
        for (uint32_t j = 0; j < 16; ++j) {
            float p[16];
            for (uint32_t i = 0; i < 16; ++i) {
                uint32_t gi = blk * 16 + i;
                p[i] = gi < n ? input[gi] * weights[size_t(gi) * 16 + j]
                              : 0.0f;
            }
            for (uint32_t str = 8; str >= 1; str /= 2)
                for (uint32_t i = 0; i < str; ++i)
                    p[i] = p[i] + p[i + str];
            partial[size_t(blk) * 16 + j] = p[0];
        }
    }
    s.checks = {{2, ElemType::F32, wordsOf(partial), 1e-4, 1e-5}};
    return s;
}

GoldenScenario
makeBackpropAdjustWeightsScenario()
{
    constexpr uint32_t n = 200;
    constexpr float lr = 0.3f;
    Rng rng(0x9004);
    GoldenScenario s;
    s.name = "backprop_adjust_weights";
    s.modules = {kernels::buildBackpropAdjustWeights()};
    auto input = randomFloats(rng, n, -1.0f, 1.0f);
    auto delta = randomFloats(rng, 16, -1.0f, 1.0f);
    auto weights = randomFloats(rng, size_t(n) * 16, -1.0f, 1.0f);
    s.buffers = {wordsOf(input), wordsOf(delta), wordsOf(weights)};
    s.steps = {makeStep(0, (uint32_t)ceilDiv(size_t(n) * 16, 256), 1,
                        {n, fbits(lr)}, {0, 1, 2})};

    std::vector<float> expect = weights;
    for (uint32_t gid = 0; gid < n * 16; ++gid) {
        uint32_t i = gid / 16, j = gid % 16;
        expect[gid] = std::fma(lr * delta[j], input[i], weights[gid]);
    }
    s.checks = {{2, ElemType::F32, wordsOf(expect), 1e-4, 1e-5}};
    return s;
}

GoldenScenario
makeBfsScenario()
{
    constexpr uint32_t n = 300;
    GoldenScenario s;
    s.name = "bfs";
    s.modules = {kernels::buildBfsKernel1(), kernels::buildBfsKernel2()};

    // The CSR builder, host state and frontier-BFS reference are the
    // bench driver's own (suite/workloads.h) — a smaller, denser
    // shape at the scenario's fixed seed.
    Graph g = generateBfsGraph(n, 0x9005, 1, 4);
    BfsHostState st(g);
    std::vector<int32_t> dist = referenceBfs(g);
    int32_t levels = 0;
    for (int32_t d : dist)
        levels = std::max(levels, d);

    s.buffers = {wordsOf(g.start), wordsOf(g.degree), wordsOf(g.edges),
                 wordsOf(st.mask), wordsOf(st.umask), wordsOf(st.visited),
                 wordsOf(st.cost), {0}};
    // One extra host iteration drains the final frontier so the masks
    // end empty (mirrors Rodinia's do/while on the stop flag).
    const uint32_t groups = (uint32_t)ceilDiv(n, 256);
    for (int32_t it = 0; it < levels + 1; ++it) {
        s.steps.push_back(
            makeStep(0, groups, 1, {n}, {0, 1, 2, 3, 4, 5, 6}));
        s.steps.push_back(makeStep(1, groups, 1, {n}, {3, 4, 5, 7}));
    }

    std::vector<int32_t> visitedExpect(n);
    for (uint32_t i = 0; i < n; ++i)
        visitedExpect[i] = dist[i] >= 0 ? 1 : 0;
    s.checks = {{6, ElemType::I32, wordsOf(dist)},
                {5, ElemType::I32, wordsOf(visitedExpect)},
                {3, ElemType::I32, wordsOf(std::vector<int32_t>(n, 0))},
                {4, ElemType::I32, wordsOf(std::vector<int32_t>(n, 0))}};
    return s;
}

GoldenScenario
makeCfdScenario()
{
    constexpr uint32_t n = 192, rowLen = 16;
    constexpr float fluxCoeff = 0.12f;
    Rng rng(0x9006);
    GoldenScenario s;
    s.name = "cfd";
    s.modules = {kernels::buildCfdStepFactor(),
                 kernels::buildCfdComputeFlux(),
                 kernels::buildCfdTimeStep()};

    std::vector<float> vars(size_t(n) * 5);
    for (uint32_t i = 0; i < n; ++i) {
        vars[i] = rng.nextFloat(0.5f, 2.0f);                // rho
        vars[n + i] = rng.nextFloat(-0.5f, 0.5f);           // mx
        vars[2 * n + i] = rng.nextFloat(-0.5f, 0.5f);       // my
        vars[3 * n + i] = rng.nextFloat(-0.5f, 0.5f);       // mz
        vars[4 * n + i] = rng.nextFloat(1.0f, 3.0f);        // e
    }
    auto areas = randomFloats(rng, n, 0.5f, 2.0f);
    std::vector<int32_t> nbr(size_t(n) * 4);
    for (uint32_t i = 0; i < n; ++i) {
        nbr[i] = i % rowLen > 0 ? (int32_t)(i - 1) : -1;
        nbr[n + i] = i % rowLen < rowLen - 1 ? (int32_t)(i + 1) : -1;
        nbr[2 * n + i] = i >= rowLen ? (int32_t)(i - rowLen) : -1;
        nbr[3 * n + i] = i + rowLen < n ? (int32_t)(i + rowLen) : -1;
    }
    auto normals = randomFloats(rng, size_t(n) * 4, 0.1f, 2.0f);

    s.buffers = {wordsOf(vars),
                 wordsOf(areas),
                 std::vector<uint32_t>(n, fbits(0.0f)),
                 wordsOf(nbr),
                 wordsOf(normals),
                 std::vector<uint32_t>(size_t(n) * 5, fbits(0.0f))};

    const uint32_t groups = (uint32_t)ceilDiv(n, 128);
    const float rk[2] = {0.5f, 1.0f};
    for (float f : rk) {
        s.steps.push_back(makeStep(0, groups, 1, {n}, {0, 1, 2}));
        s.steps.push_back(makeStep(1, groups, 1, {n}, {0, 3, 4, 5}));
        s.steps.push_back(
            makeStep(2, groups, 1, {n, fbits(f)}, {0, 2, 5}));
    }

    // CPU reference, mirroring the kernels' operation order exactly.
    std::vector<float> v = vars, sf(n, 0.0f), flux(size_t(n) * 5, 0.0f);
    for (float f : rk) {
        for (uint32_t i = 0; i < n; ++i) {
            float rho = v[i], mx = v[n + i], my = v[2 * n + i];
            float mz = v[3 * n + i], e = v[4 * n + i];
            float rhoSafe = std::fmax(rho, 1e-6f);
            float m2 = std::fma(mx, mx, std::fma(my, my, mz * mz));
            float v2 = m2 / (rhoSafe * rhoSafe);
            float halfRhoV2 = 0.5f * (rhoSafe * v2);
            float p = std::fmax(0.4f * (e - halfRhoV2), 1e-6f);
            float c = std::sqrt((1.4f * p) / rhoSafe);
            float speed = std::sqrt(v2);
            float area = std::fmax(areas[i], 1e-6f);
            float denom = std::sqrt(area) * (speed + c);
            sf[i] = 0.5f / denom;
        }
        for (uint32_t i = 0; i < n; ++i) {
            float centre[5], acc[5] = {0, 0, 0, 0, 0};
            for (uint32_t k = 0; k < 5; ++k)
                centre[k] = v[size_t(k) * n + i];
            for (uint32_t nb = 0; nb < 4; ++nb) {
                int32_t j = nbr[size_t(nb) * n + i];
                if (j < 0)
                    continue;
                float w = normals[size_t(nb) * n + i];
                float weight = (fluxCoeff * std::sqrt(w)) / (1.0f + w);
                for (uint32_t k = 0; k < 5; ++k) {
                    float other = v[size_t(k) * n + (uint32_t)j];
                    acc[k] = std::fma(other - centre[k], weight, acc[k]);
                }
            }
            for (uint32_t k = 0; k < 5; ++k)
                flux[size_t(k) * n + i] = acc[k];
        }
        for (uint32_t i = 0; i < n; ++i) {
            float factor = f * sf[i];
            for (uint32_t k = 0; k < 5; ++k) {
                size_t off = size_t(k) * n + i;
                v[off] = std::fma(factor, flux[off], v[off]);
            }
        }
    }
    s.checks = {{0, ElemType::F32, wordsOf(v), 1e-4, 1e-5},
                {2, ElemType::F32, wordsOf(sf), 1e-4, 1e-5},
                {5, ElemType::F32, wordsOf(flux), 1e-4, 1e-5}};
    return s;
}

GoldenScenario
makeGaussianScenario()
{
    constexpr uint32_t n = 24;
    Rng rng(0x9007);
    GoldenScenario s;
    s.name = "gaussian";
    s.modules = {kernels::buildGaussianFan1(), kernels::buildGaussianFan2()};

    auto a = randomFloats(rng, size_t(n) * n, -1.0f, 1.0f);
    for (uint32_t i = 0; i < n; ++i)
        a[size_t(i) * n + i] += (float)n; // diagonal dominance
    auto bvec = randomFloats(rng, n, 0.0f, 10.0f);
    s.buffers = {wordsOf(a),
                 std::vector<uint32_t>(size_t(n) * n, fbits(0.0f)),
                 wordsOf(bvec)};

    for (uint32_t t = 0; t + 1 < n; ++t) {
        uint32_t rows = n - 1 - t, cols = n - t;
        s.steps.push_back(makeStep(
            0, (uint32_t)ceilDiv(rows, 256), 1, {n, t}, {0, 1}));
        s.steps.push_back(makeStep(
            1, (uint32_t)ceilDiv(size_t(rows) * cols, 256), 1, {n, t},
            {0, 1, 2}));
    }

    // CPU forward elimination, identical operation order.
    std::vector<float> ra = a, rm(size_t(n) * n, 0.0f), rb = bvec;
    for (uint32_t t = 0; t + 1 < n; ++t) {
        float pivot = ra[size_t(t) * n + t];
        for (uint32_t row = t + 1; row < n; ++row)
            rm[size_t(row) * n + t] = ra[size_t(row) * n + t] / pivot;
        for (uint32_t row = t + 1; row < n; ++row) {
            float mult = rm[size_t(row) * n + t];
            for (uint32_t col = t; col < n; ++col)
                ra[size_t(row) * n + col] -=
                    mult * ra[size_t(t) * n + col];
            rb[row] -= mult * rb[t];
        }
    }
    s.checks = {{0, ElemType::F32, wordsOf(ra), 1e-4, 1e-5},
                {1, ElemType::F32, wordsOf(rm), 1e-4, 1e-5},
                {2, ElemType::F32, wordsOf(rb), 1e-4, 1e-5}};
    return s;
}

GoldenScenario
makeHotspotScenario()
{
    constexpr uint32_t g = 64;
    constexpr float cc = 0.05f, rxInv = 0.1f, ryInv = 0.1f,
                    rzInv = 0.003f, amb = 80.0f;
    Rng rng(0x9008);
    GoldenScenario s;
    s.name = "hotspot";
    s.modules = {kernels::buildHotspotStep()};
    auto tIn = randomFloats(rng, size_t(g) * g, 40.0f, 90.0f);
    auto power = randomFloats(rng, size_t(g) * g, 0.0f, 0.5f);
    s.buffers = {wordsOf(tIn), wordsOf(power),
                 std::vector<uint32_t>(size_t(g) * g, fbits(0.0f))};
    s.steps = {makeStep(0, g / 16, g / 16,
                        {g, fbits(cc), fbits(rxInv), fbits(ryInv),
                         fbits(rzInv), fbits(amb)},
                        {0, 1, 2})};

    auto at = [&](int32_t r, int32_t c) {
        r = std::clamp(r, 0, (int32_t)g - 1);
        c = std::clamp(c, 0, (int32_t)g - 1);
        return tIn[size_t(r) * g + c];
    };
    std::vector<float> tOut(size_t(g) * g);
    for (int32_t r = 0; r < (int32_t)g; ++r) {
        for (int32_t c = 0; c < (int32_t)g; ++c) {
            float centre = at(r, c);
            float vert = (at(r - 1, c) + at(r + 1, c)) - 2.0f * centre;
            float horiz = (at(r, c + 1) + at(r, c - 1)) - 2.0f * centre;
            float sink = amb - centre;
            float delta = power[size_t(r) * g + c] + vert * ryInv;
            delta = delta + horiz * rxInv;
            delta = delta + sink * rzInv;
            tOut[size_t(r) * g + c] = std::fma(cc, delta, centre);
        }
    }
    s.checks = {{2, ElemType::F32, wordsOf(tOut), 1e-4, 1e-5}};
    return s;
}

GoldenScenario
makeLudScenario()
{
    constexpr uint32_t n = 48, nb = n / 16;
    Rng rng(0x9009);
    GoldenScenario s;
    s.name = "lud";
    s.modules = {kernels::buildLudDiagonal(), kernels::buildLudPerimeter(),
                 kernels::buildLudInternal()};
    auto a = randomFloats(rng, size_t(n) * n, -1.0f, 1.0f);
    for (uint32_t i = 0; i < n; ++i)
        a[size_t(i) * n + i] += 2.0f * n; // well-conditioned
    s.buffers = {wordsOf(a)};

    for (uint32_t t = 0; t < nb; ++t) {
        s.steps.push_back(makeStep(0, 1, 1, {n, t}, {0}));
        uint32_t rem = nb - 1 - t;
        if (rem == 0)
            continue;
        s.steps.push_back(makeStep(1, 2 * rem, 1, {n, t, rem}, {0}));
        s.steps.push_back(makeStep(2, rem, rem, {n, t}, {0}));
    }

    // From-scratch reference: unblocked in-place Doolittle LU.  The
    // blocked kernels compute the same factorisation with a different
    // summation order, hence the tolerance comparison.
    std::vector<float> lu = a;
    for (uint32_t k = 0; k < n; ++k) {
        for (uint32_t i = k + 1; i < n; ++i) {
            lu[size_t(i) * n + k] /= lu[size_t(k) * n + k];
            float lik = lu[size_t(i) * n + k];
            for (uint32_t j = k + 1; j < n; ++j)
                lu[size_t(i) * n + j] -= lik * lu[size_t(k) * n + j];
        }
    }
    s.checks = {{0, ElemType::F32, wordsOf(lu), 1e-4, 1e-5}};
    return s;
}

GoldenScenario
makeNnScenario()
{
    constexpr uint32_t n = 500;
    constexpr float qLat = 30.0f, qLng = 90.0f;
    Rng rng(0x900a);
    GoldenScenario s;
    s.name = "nn";
    s.modules = {kernels::buildNnEuclid()};
    auto lat = randomFloats(rng, n, 0.0f, 90.0f);
    auto lng = randomFloats(rng, n, 0.0f, 180.0f);
    s.buffers = {wordsOf(lat), wordsOf(lng),
                 std::vector<uint32_t>(n, fbits(0.0f))};
    s.steps = {makeStep(0, (uint32_t)ceilDiv(n, 256), 1,
                        {n, fbits(qLat), fbits(qLng)}, {0, 1, 2})};

    std::vector<float> dist(n);
    for (uint32_t i = 0; i < n; ++i) {
        float dlat = lat[i] - qLat, dlng = lng[i] - qLng;
        dist[i] = std::sqrt(std::fma(dlat, dlat, dlng * dlng));
    }
    s.checks = {{2, ElemType::F32, wordsOf(dist), 1e-4, 1e-5}};
    return s;
}

GoldenScenario
makeNwScenario()
{
    constexpr uint32_t n = 64, nb = n / kernels::nwBlockSize;
    constexpr int32_t penalty = 10;
    const uint32_t nn1 = n + 1;
    Rng rng(0x900b);
    GoldenScenario s;
    s.name = "nw";
    s.modules = {kernels::buildNwBlock()};

    std::vector<int32_t> items(size_t(nn1) * nn1, 0);
    std::vector<int32_t> ref(size_t(nn1) * nn1, 0);
    for (uint32_t i = 1; i < nn1; ++i) {
        items[size_t(i) * nn1] = -(int32_t)i * penalty;
        items[i] = -(int32_t)i * penalty;
        for (uint32_t j = 1; j < nn1; ++j)
            ref[size_t(i) * nn1 + j] = (int32_t)rng.nextBelow(10);
    }
    s.buffers = {wordsOf(items), wordsOf(ref)};

    for (uint32_t sdiag = 0; sdiag < 2 * nb - 1; ++sdiag) {
        uint32_t xStart = sdiag >= nb ? sdiag - nb + 1 : 0;
        uint32_t xEnd = std::min(sdiag, nb - 1);
        s.steps.push_back(makeStep(
            0, xEnd - xStart + 1, 1,
            {n, sdiag, xStart, (uint32_t)penalty}, {0, 1}));
    }

    std::vector<int32_t> expect = items;
    for (uint32_t i = 1; i < nn1; ++i)
        for (uint32_t j = 1; j < nn1; ++j)
            expect[size_t(i) * nn1 + j] = std::max(
                expect[size_t(i - 1) * nn1 + (j - 1)] +
                    ref[size_t(i) * nn1 + j],
                std::max(expect[size_t(i - 1) * nn1 + j] - penalty,
                         expect[size_t(i) * nn1 + (j - 1)] - penalty));
    s.checks = {{0, ElemType::I32, wordsOf(expect)}};
    return s;
}

GoldenScenario
makePathfinderScenario()
{
    constexpr uint32_t cols = 700, rows = 6;
    Rng rng(0x900c);
    GoldenScenario s;
    s.name = "pathfinder";
    s.modules = {kernels::buildPathfinderRow()};

    std::vector<int32_t> data(size_t(rows) * cols);
    for (auto &x : data)
        x = (int32_t)rng.nextBelow(10);
    std::vector<int32_t> rowA(data.begin(), data.begin() + cols);
    s.buffers = {wordsOf(data), wordsOf(rowA),
                 std::vector<uint32_t>(cols, 0)};

    const uint32_t groups = (uint32_t)ceilDiv(cols, 256);
    for (uint32_t row = 1; row < rows; ++row) {
        bool ping = row % 2 == 1; // odd rows read rowA, write rowB
        s.steps.push_back(makeStep(0, groups, 1, {cols, row},
                                   ping ? std::vector<size_t>{0, 1, 2}
                                        : std::vector<size_t>{0, 2, 1}));
    }

    // DP reference; rows-1 = 5 steps leave the final row in rowB (2)
    // and the penultimate row in rowA (1).
    std::vector<int32_t> dp(rowA.begin(), rowA.end()), prev;
    for (uint32_t row = 1; row < rows; ++row) {
        prev = dp;
        for (uint32_t j = 0; j < cols; ++j) {
            int32_t left = prev[j > 0 ? j - 1 : 0];
            int32_t right = prev[j + 1 < cols ? j + 1 : cols - 1];
            dp[j] = data[size_t(row) * cols + j] +
                    std::min(std::min(left, prev[j]), right);
        }
        if (row == rows - 2)
            rowA = dp;
    }
    s.checks = {{2, ElemType::I32, wordsOf(dp)},
                {1, ElemType::I32, wordsOf(rowA)}};
    return s;
}

GoldenScenario
makeSradScenario()
{
    constexpr uint32_t g = 32, n = g * g, blocks = n / 256, iters = 2;
    constexpr float lambda = 0.05f;
    Rng rng(0x900d);
    GoldenScenario s;
    s.name = "srad";
    s.modules = {kernels::buildSradReduce(), kernels::buildSradStep1(),
                 kernels::buildSradStep2()};

    auto j0 = randomFloats(rng, n, 1.0f, 2.0f);
    s.buffers = {wordsOf(j0),
                 std::vector<uint32_t>(blocks, fbits(0.0f)),
                 std::vector<uint32_t>(blocks, fbits(0.0f)),
                 std::vector<uint32_t>(n, fbits(0.0f)),
                 std::vector<uint32_t>(n, fbits(0.0f)),
                 std::vector<uint32_t>(n, fbits(0.0f)),
                 std::vector<uint32_t>(n, fbits(0.0f)),
                 std::vector<uint32_t>(n, fbits(0.0f))};

    // CPU mirror of the full host loop, interleaved with the schedule
    // because each iteration's q0sqr push value comes from the mirrored
    // reduction (exactly what the benchmark host computes from the
    // partials it reads back).  Every float op uses a named temporary
    // so the compiler cannot contract mul+add pairs the kernel executes
    // separately.
    std::vector<float> j = j0, c(n, 0.0f);
    std::vector<float> dn(n, 0.0f), ds(n, 0.0f), dw(n, 0.0f), de(n, 0.0f);
    std::vector<float> psum(blocks, 0.0f), psum2(blocks, 0.0f);
    auto clampi = [](int32_t v, int32_t lo, int32_t hi) {
        return std::min(std::max(v, lo), hi);
    };
    for (uint32_t it = 0; it < iters; ++it) {
        for (uint32_t blk = 0; blk < blocks; ++blk) {
            float p[256], p2[256];
            for (uint32_t i = 0; i < 256; ++i) {
                float v = j[size_t(blk) * 256 + i];
                p[i] = v;
                p2[i] = v * v;
            }
            for (uint32_t str = 128; str >= 1; str /= 2) {
                for (uint32_t i = 0; i < str; ++i) {
                    p[i] = p[i] + p[i + str];
                    p2[i] = p2[i] + p2[i + str];
                }
            }
            psum[blk] = p[0];
            psum2[blk] = p2[0];
        }
        float sum = 0.0f, sum2 = 0.0f;
        for (uint32_t blk = 0; blk < blocks; ++blk) {
            sum = sum + psum[blk];
            sum2 = sum2 + psum2[blk];
        }
        const float nf = (float)n;
        float mean = sum / nf;
        float m2 = mean * mean;
        float var = sum2 / nf - m2;
        float q0 = var / m2;

        s.steps.push_back(makeStep(0, blocks, 1, {n}, {0, 1, 2}));
        s.steps.push_back(makeStep(1, g / 16, g / 16, {g, fbits(q0)},
                                   {0, 3, 4, 5, 6, 7}));
        s.steps.push_back(makeStep(2, g / 16, g / 16, {g, fbits(lambda)},
                                   {0, 3, 4, 5, 6, 7}));

        for (int32_t r = 0; r < (int32_t)g; ++r) {
            for (int32_t col = 0; col < (int32_t)g; ++col) {
                size_t idx = size_t(r) * g + col;
                float jc = j[idx];
                auto at = [&](int32_t rr, int32_t cc) {
                    return j[size_t(clampi(rr, 0, g - 1)) * g +
                             clampi(cc, 0, g - 1)];
                };
                dn[idx] = at(r - 1, col) - jc;
                ds[idx] = at(r + 1, col) - jc;
                dw[idx] = at(r, col - 1) - jc;
                de[idx] = at(r, col + 1) - jc;
                float sqa = dn[idx] * dn[idx];
                float sqb = ds[idx] * ds[idx];
                float sqc = dw[idx] * dw[idx];
                float sqd = de[idx] * de[idx];
                float sq = (sqa + sqb) + (sqc + sqd);
                float jc2 = jc * jc;
                float g2 = sq / jc2;
                float lsum = (dn[idx] + ds[idx]) + (dw[idx] + de[idx]);
                float l = lsum / jc;
                float hg = 0.5f * g2;
                float ll = l * l;
                float sl = 0.0625f * ll;
                float num = hg - sl;
                float qt = 0.25f * l;
                float den = 1.0f + qt;
                float dd = den * den;
                float qsqr = num / dd;
                float qd = qsqr - q0;
                float q1 = 1.0f + q0;
                float qq = q0 * q1;
                float den2 = qd / qq;
                float e1 = 1.0f + den2;
                float cval = 1.0f / e1;
                c[idx] = std::fmin(std::fmax(cval, 0.0f), 1.0f);
            }
        }
        for (int32_t r = 0; r < (int32_t)g; ++r) {
            for (int32_t col = 0; col < (int32_t)g; ++col) {
                size_t idx = size_t(r) * g + col;
                float cc = c[idx];
                float cs =
                    c[size_t(clampi(r + 1, 0, g - 1)) * g + col];
                float ce =
                    c[size_t(r) * g + clampi(col + 1, 0, g - 1)];
                float d = cc * dn[idx];
                float t1 = cs * ds[idx];
                d = d + t1;
                float t2 = cc * dw[idx];
                d = d + t2;
                float t3 = ce * de[idx];
                d = d + t3;
                float lam4 = 0.25f * lambda;
                j[idx] = std::fma(lam4, d, j[idx]);
            }
        }
    }
    s.checks = {{0, ElemType::F32, wordsOf(j), 1e-4, 1e-5},
                {3, ElemType::F32, wordsOf(c), 1e-4, 1e-5},
                {1, ElemType::F32, wordsOf(psum), 1e-4, 1e-5},
                {2, ElemType::F32, wordsOf(psum2), 1e-4, 1e-5}};
    return s;
}

GoldenScenario
makeKmeansScenario()
{
    constexpr uint32_t n = 512, f = 4, k = 4, iters = 6;
    Rng rng(0x900e);
    GoldenScenario s;
    s.name = "kmeans";
    s.modules = {kernels::buildKmeansSwap(), kernels::buildKmeansAssign()};

    auto aos = randomFloats(rng, size_t(n) * f, 0.0f, 10.0f);
    std::vector<float> soa(size_t(n) * f);
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t jf = 0; jf < f; ++jf)
            soa[size_t(jf) * n + i] = aos[size_t(i) * f + jf];

    // Buffer layout: 0=aos, 1=soa(zeros), 2=membership(-1),
    // 3+t = the centroid buffer iteration t reads (host-recomputed
    // between iterations, so each is a separate seeded buffer),
    // 3+iters+t = iteration t's delta word.
    s.buffers = {wordsOf(aos),
                 std::vector<uint32_t>(size_t(n) * f, fbits(0.0f)),
                 wordsOf(std::vector<int32_t>(n, -1))};
    const size_t centBase = 3, deltaBase = centBase + iters;

    std::vector<float> cent(size_t(k) * f);
    for (uint32_t c = 0; c < k; ++c)
        for (uint32_t jf = 0; jf < f; ++jf)
            cent[size_t(c) * f + jf] = aos[size_t(c) * f + jf];

    std::vector<int32_t> mem(n, -1);
    std::vector<int32_t> deltas(iters, 0);
    const uint32_t groups = (uint32_t)ceilDiv(n, 256);
    s.steps = {makeStep(0, groups, 1, {n, f}, {0, 1})};
    for (uint32_t t = 0; t < iters; ++t) {
        s.buffers.push_back(wordsOf(cent));
        for (uint32_t i = 0; i < n; ++i) {
            int32_t best = 0;
            float best_dist = 3.402823466e38f;
            for (uint32_t c = 0; c < k; ++c) {
                float dist = 0.0f;
                for (uint32_t jf = 0; jf < f; ++jf) {
                    float diff = soa[size_t(jf) * n + i] -
                                 cent[size_t(c) * f + jf];
                    float sq = diff * diff;
                    dist = dist + sq;
                }
                if (dist < best_dist) {
                    best_dist = dist;
                    best = (int32_t)c;
                }
            }
            if (mem[i] != best)
                ++deltas[t];
            mem[i] = best;
        }
        // Host centroid update: mean of members, empty clusters keep
        // their previous centre.
        std::vector<float> sums(size_t(k) * f, 0.0f);
        std::vector<uint32_t> counts(k, 0);
        for (uint32_t i = 0; i < n; ++i) {
            ++counts[(uint32_t)mem[i]];
            for (uint32_t jf = 0; jf < f; ++jf) {
                size_t off = size_t(mem[i]) * f + jf;
                sums[off] = sums[off] + aos[size_t(i) * f + jf];
            }
        }
        for (uint32_t c = 0; c < k; ++c)
            for (uint32_t jf = 0; jf < f; ++jf)
                if (counts[c] > 0)
                    cent[size_t(c) * f + jf] =
                        sums[size_t(c) * f + jf] / (float)counts[c];
    }
    for (uint32_t t = 0; t < iters; ++t)
        s.buffers.push_back({0});
    for (uint32_t t = 0; t < iters; ++t)
        s.steps.push_back(makeStep(1, groups, 1, {n, f, k},
                                   {1, centBase + t, 2, deltaBase + t}));

    s.checks = {{2, ElemType::I32, wordsOf(mem)},
                {1, ElemType::F32, wordsOf(soa), 0.0, 0.0}};
    for (uint32_t t = 0; t < iters; ++t)
        s.checks.push_back({deltaBase + t, ElemType::I32,
                            wordsOf(std::vector<int32_t>{deltas[t]})});
    return s;
}

GoldenScenario
makeStreamclusterScenario()
{
    constexpr uint32_t n = 320, dim = 6;
    const uint32_t candidates[] = {7, 31, 101};
    constexpr size_t rounds = std::size(candidates);
    Rng rng(0x900f);
    GoldenScenario s;
    s.name = "streamcluster";
    s.modules = {kernels::buildStreamclusterGain()};

    auto soa = randomFloats(rng, size_t(dim) * n, 0.0f, 100.0f);
    auto weight = randomFloats(rng, n, 1.0f, 4.0f);

    // Mirrors the kernel's distance loop (named temporaries, ascending
    // feature order) so switch decisions match bit-for-bit.
    auto distTo = [&](uint32_t i, uint32_t x) {
        float d = 0.0f;
        for (uint32_t jf = 0; jf < dim; ++jf) {
            float diff = soa[size_t(jf) * n + i] - soa[size_t(jf) * n + x];
            float sq = diff * diff;
            d = d + sq;
        }
        return d;
    };

    // All points start assigned to point 0.
    std::vector<float> cost(n);
    for (uint32_t i = 0; i < n; ++i)
        cost[i] = weight[i] * distTo(i, 0);

    // Buffer layout: 0=soa, 1=weight, 2+r = the (host-updated) cost
    // buffer round r reads, 2+rounds+r = lower, 2+2*rounds+r = switch.
    s.buffers = {wordsOf(soa), wordsOf(weight)};
    const size_t costBase = 2, lowerBase = costBase + rounds,
                 switchBase = lowerBase + rounds;
    std::vector<std::vector<float>> lowers, costsIn;
    std::vector<std::vector<int32_t>> switches;
    for (size_t r = 0; r < rounds; ++r) {
        costsIn.push_back(cost);
        uint32_t x = candidates[r];
        std::vector<float> lower(n, 0.0f);
        std::vector<int32_t> sw(n, 0);
        for (uint32_t i = 0; i < n; ++i) {
            float cost_new = weight[i] * distTo(i, x);
            if (cost_new < cost[i]) {
                lower[i] = cost[i] - cost_new;
                sw[i] = 1;
            }
        }
        // The host opens every profitable centre in this simplified
        // pgain loop: switched points adopt the candidate's cost.
        for (uint32_t i = 0; i < n; ++i)
            if (sw[i])
                cost[i] = weight[i] * distTo(i, x);
        lowers.push_back(std::move(lower));
        switches.push_back(std::move(sw));
    }
    for (size_t r = 0; r < rounds; ++r)
        s.buffers.push_back(wordsOf(costsIn[r]));
    for (size_t r = 0; r < rounds; ++r)
        s.buffers.push_back(std::vector<uint32_t>(n, fbits(0.0f)));
    for (size_t r = 0; r < rounds; ++r)
        s.buffers.push_back(std::vector<uint32_t>(n, 0));

    const uint32_t groups = (uint32_t)ceilDiv(n, 256);
    for (size_t r = 0; r < rounds; ++r)
        s.steps.push_back(makeStep(0, groups, 1,
                                   {n, dim, candidates[r]},
                                   {0, 1, costBase + r, lowerBase + r,
                                    switchBase + r}));
    for (size_t r = 0; r < rounds; ++r) {
        s.checks.push_back({lowerBase + r, ElemType::F32,
                            wordsOf(lowers[r]), 1e-4, 1e-5});
        s.checks.push_back(
            {switchBase + r, ElemType::I32, wordsOf(switches[r])});
    }
    return s;
}

} // namespace

const std::vector<GoldenScenario> &
goldenScenarios()
{
    static const std::vector<GoldenScenario> scenarios = {
        makeVecAddScenario(),
        makeStridedReadScenario(),
        makeBackpropLayerForwardScenario(),
        makeBackpropAdjustWeightsScenario(),
        makeBfsScenario(),
        makeCfdScenario(),
        makeGaussianScenario(),
        makeHotspotScenario(),
        makeLudScenario(),
        makeNnScenario(),
        makeNwScenario(),
        makePathfinderScenario(),
        makeSradScenario(),
        makeKmeansScenario(),
        makeStreamclusterScenario(),
    };
    return scenarios;
}

const GoldenScenario &
goldenScenarioByName(const std::string &name)
{
    for (const auto &s : goldenScenarios())
        if (s.name == name)
            return s;
    fatal("no golden scenario named '%s'", name.c_str());
}

GoldenOutcome
runGoldenScenario(const GoldenScenario &s, const sim::DeviceSpec &dev,
                  sim::Api api, const sim::LowerOptions *lower)
{
    GoldenOutcome out;
    if (!dev.profile(api).available) {
        out.skipReason =
            strprintf("%s not available on %s", sim::apiName(api),
                      dev.name.c_str());
        return out;
    }

    std::vector<std::unique_ptr<sim::CompiledKernel>> compiled;
    for (const auto &m : s.modules) {
        std::string err;
        auto k = sim::compileKernel(m, dev, api, &err);
        if (!k) {
            out.skipReason = m.name + ": " + err;
            return out;
        }
        if (lower)
            sim::lowerKernel(*k, *lower);
        compiled.push_back(std::move(k));
    }

    auto work = s.buffers;
    sim::ExecutionEngine engine(dev);
    for (const auto &step : s.steps) {
        VCB_ASSERT(step.module < compiled.size(),
                   "step module %zu out of range", step.module);
        sim::DispatchContext ctx;
        ctx.kernel = compiled[step.module].get();
        for (int d = 0; d < 3; ++d)
            ctx.groups[d] = step.groups[d];
        ctx.buffers.resize(step.buffers.size());
        for (size_t b = 0; b < step.buffers.size(); ++b) {
            VCB_ASSERT(step.buffers[b] < work.size(),
                       "step buffer %zu out of range", step.buffers[b]);
            auto &buf = work[step.buffers[b]];
            ctx.buffers[b] = {buf.data(), buf.size()};
        }
        ctx.push = step.push.data();
        ctx.pushWords = (uint32_t)step.push.size();
        sim::DispatchResult r = engine.dispatch(ctx);
        out.stepStats.push_back(r.stats);
        out.kernelNs += r.kernelNs;
    }

    out.ran = true;
    for (const auto &chk : s.checks) {
        VCB_ASSERT(chk.buffer < work.size(), "check buffer %zu",
                   chk.buffer);
        const auto &got = work[chk.buffer];
        out.checkedBuffers.push_back(got);
        std::string err =
            chk.elem == ElemType::F32
                ? compareFloats(floatsOf(got), floatsOf(chk.expect),
                                chk.relTol, chk.absTol)
                : compareInts(intsOf(got), intsOf(chk.expect));
        if (!err.empty() && out.error.empty())
            out.error = strprintf("buffer %zu: %s", chk.buffer,
                                  err.c_str());
    }
    return out;
}

} // namespace vcb::suite

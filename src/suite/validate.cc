#include "suite/validate.h"

#include <cmath>

#include "common/logging.h"
#include "common/strutil.h"

namespace vcb::suite {

std::string
compareFloats(const std::vector<float> &got,
              const std::vector<float> &expect, double rel_tol,
              double abs_tol)
{
    if (got.size() != expect.size())
        return strprintf("size mismatch: got %zu, expected %zu",
                         got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
        double g = got[i], e = expect[i];
        if (std::isnan(g) != std::isnan(e))
            return strprintf("[%zu]: got %g, expected %g (NaN mismatch)",
                             i, g, e);
        if (std::isnan(g))
            continue;
        double err = std::abs(g - e);
        double bound = abs_tol + rel_tol * std::abs(e);
        if (err > bound)
            return strprintf("[%zu]: got %.7g, expected %.7g (err %.3g "
                             "> bound %.3g)",
                             i, g, e, err, bound);
    }
    return "";
}

std::string
compareInts(const std::vector<int32_t> &got,
            const std::vector<int32_t> &expect)
{
    if (got.size() != expect.size())
        return strprintf("size mismatch: got %zu, expected %zu",
                         got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
        if (got[i] != expect[i])
            return strprintf("[%zu]: got %d, expected %d", i, got[i],
                             expect[i]);
    }
    return "";
}

} // namespace vcb::suite

/**
 * @file
 * lud — LU Decomposition (Dense Linear Algebra), blocked 16x16.
 *
 * nb dependent steps of up to three kernels (diagonal, perimeter,
 * internal).  CUDA/OpenCL: blocking multi-kernel iterations; Vulkan:
 * one command buffer with three pipelines bound per step.  This is
 * the benchmark whose OpenCL build fails on the Snapdragon (paper
 * Sec. V-B2), reproduced via the Adreno driver profile.
 */

#include "suite/benchmark.h"

#include <cmath>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

constexpr uint32_t B = kernels::blockSize;

struct Matrix
{
    uint32_t n = 0;
    std::vector<float> a;
};

Matrix
generateMatrix(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Matrix m;
    m.n = static_cast<uint32_t>(alignUp(n, B));
    m.a.resize(uint64_t(m.n) * m.n);
    for (uint32_t i = 0; i < m.n; ++i) {
        float row_sum = 0;
        for (uint32_t j = 0; j < m.n; ++j) {
            float v = rng.nextFloat(0.01f, 1.0f);
            m.a[uint64_t(i) * m.n + j] = v;
            row_sum += v;
        }
        m.a[uint64_t(i) * m.n + i] = row_sum + 2.0f;
    }
    return m;
}

/** CPU reference: the same blocked algorithm in the same float order
 *  (diagonal, then perimeter row/column blocks, then internal). */
std::vector<float>
referenceLud(const Matrix &mat)
{
    uint32_t n = mat.n, nb = n / B;
    std::vector<float> a = mat.a;
    auto at = [&](uint32_t r, uint32_t c) -> float & {
        return a[uint64_t(r) * n + c];
    };
    for (uint32_t t = 0; t < nb; ++t) {
        uint32_t base = t * B;
        // Diagonal block.
        for (uint32_t i = 0; i + 1 < B; ++i)
            for (uint32_t j = i + 1; j < B; ++j) {
                at(base + j, base + i) /= at(base + i, base + i);
                float l = at(base + j, base + i);
                for (uint32_t k = i + 1; k < B; ++k)
                    at(base + j, base + k) -= l * at(base + i, base + k);
            }
        if (t + 1 == nb)
            break;
        // Perimeter row blocks (U panels).
        for (uint32_t cb = t + 1; cb < nb; ++cb)
            for (uint32_t j = 0; j < B; ++j)      // column of the block
                for (uint32_t i = 0; i < B; ++i) { // row (sequential)
                    float acc = at(base + i, cb * B + j);
                    for (uint32_t k = 0; k < i; ++k)
                        acc -= at(base + i, base + k) *
                               at(base + k, cb * B + j);
                    at(base + i, cb * B + j) = acc;
                }
        // Perimeter column blocks (L panels).
        for (uint32_t rb = t + 1; rb < nb; ++rb)
            for (uint32_t j = 0; j < B; ++j)       // row of the block
                for (uint32_t i = 0; i < B; ++i) { // column (sequential)
                    float acc = at(rb * B + j, base + i);
                    for (uint32_t k = 0; k < i; ++k)
                        acc -= at(rb * B + j, base + k) *
                               at(base + k, base + i);
                    at(rb * B + j, base + i) =
                        acc / at(base + i, base + i);
                }
        // Internal blocks.
        for (uint32_t rb = t + 1; rb < nb; ++rb)
            for (uint32_t cb = t + 1; cb < nb; ++cb)
                for (uint32_t i = 0; i < B; ++i)
                    for (uint32_t j = 0; j < B; ++j) {
                        float acc = 0;
                        for (uint32_t k = 0; k < B; ++k)
                            acc = std::fma(at(rb * B + i, base + k),
                                           at(base + k, cb * B + j),
                                           acc);
                        at(rb * B + i, cb * B + j) -= acc;
                    }
    }
    return a;
}

RunResult
finish(RunResult res, const Matrix &mat, std::vector<float> a)
{
    res.validationError = compareFloats(a, referenceLud(mat), 5e-3, 1e-3);
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const Matrix &mat)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel kd, kp, ki;
    std::string err = createVkKernel(ctx, kernels::buildLudDiagonal(),
                                     &kd);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildLudPerimeter(), &kp);
    if (err.empty())
        err = createVkKernel(ctx, kernels::buildLudInternal(), &ki);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint32_t n = mat.n, nb = n / B;
    uint64_t bytes = uint64_t(n) * n * 4;
    auto b_a = ctx.createDeviceBuffer(bytes);
    ctx.upload(b_a, mat.a.data(), bytes);

    auto sd = makeDescriptorSet(ctx, kd, {{0, b_a}});
    auto sp = makeDescriptorSet(ctx, kp, {{0, b_a}});
    auto s_int = makeDescriptorSet(ctx, ki, {{0, b_a}});

    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    for (uint32_t t = 0; t < nb; ++t) {
        uint32_t push2[2] = {n, t};
        vkm::cmdBindPipeline(cb, kd.pipeline);
        vkm::cmdBindDescriptorSet(cb, kd.layout, 0, sd);
        vkm::cmdPushConstants(cb, kd.layout, 0, 8, push2);
        vkm::cmdDispatch(cb, 1, 1, 1);
        vkm::cmdPipelineBarrier(cb);
        res.launches += 1;
        if (t + 1 == nb)
            break;
        uint32_t rem = nb - t - 1;
        uint32_t push3[3] = {n, t, rem};
        vkm::cmdBindPipeline(cb, kp.pipeline);
        vkm::cmdBindDescriptorSet(cb, kp.layout, 0, sp);
        vkm::cmdPushConstants(cb, kp.layout, 0, 12, push3);
        vkm::cmdDispatch(cb, 2 * rem, 1, 1);
        vkm::cmdPipelineBarrier(cb);
        vkm::cmdBindPipeline(cb, ki.pipeline);
        vkm::cmdBindDescriptorSet(cb, ki.layout, 0, s_int);
        vkm::cmdPushConstants(cb, ki.layout, 0, 8, push2);
        vkm::cmdDispatch(cb, rem, rem, 1);
        vkm::cmdPipelineBarrier(cb);
        res.launches += 2;
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    double t0 = ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    res.kernelRegionNs = ctx.now() - t0;

    std::vector<float> out(uint64_t(n) * n);
    ctx.download(b_a, out.data(), bytes);
    res.totalNs = ctx.now() - t_total0;
    return finish(std::move(res), mat, std::move(out));
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Matrix &mat)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto pd = ocl::createProgramWithSource(ctx,
                                           kernels::buildLudDiagonal());
    auto pp = ocl::createProgramWithSource(ctx,
                                           kernels::buildLudPerimeter());
    auto pi = ocl::createProgramWithSource(ctx,
                                           kernels::buildLudInternal());
    std::string err;
    if (!ocl::buildProgram(pd, &err) || !ocl::buildProgram(pp, &err) ||
        !ocl::buildProgram(pi, &err)) {
        res.skipReason = err;
        return res;
    }
    auto kd = ocl::createKernel(pd, "lud_diagonal", &err);
    auto kp = ocl::createKernel(pp, "lud_perimeter", &err);
    auto ki = ocl::createKernel(pi, "lud_internal", &err);
    VCB_ASSERT(kd.valid() && kp.valid() && ki.valid(),
               "kernel creation failed: %s", err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint32_t n = mat.n, nb = n / B;
    uint64_t bytes = uint64_t(n) * n * 4;
    auto b_a = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    ocl::enqueueWriteBuffer(ctx, b_a, true, 0, bytes, mat.a.data());

    ocl::setKernelArgBuffer(kd, 0, b_a);
    ocl::setKernelArgBuffer(kp, 0, b_a);
    ocl::setKernelArgBuffer(ki, 0, b_a);

    double t0 = ctx.hostNowNs();
    for (uint32_t t = 0; t < nb; ++t) {
        ocl::setKernelArgScalar(kd, 0, n);
        ocl::setKernelArgScalar(kd, 1, t);
        ocl::enqueueNDRangeKernel(ctx, kd, B);
        res.launches += 1;
        if (t + 1 < nb) {
            uint32_t rem = nb - t - 1;
            ocl::setKernelArgScalar(kp, 0, n);
            ocl::setKernelArgScalar(kp, 1, t);
            ocl::setKernelArgScalar(kp, 2, rem);
            ocl::enqueueNDRangeKernel(ctx, kp, 2 * rem * B);
            ocl::setKernelArgScalar(ki, 0, n);
            ocl::setKernelArgScalar(ki, 1, t);
            ocl::enqueueNDRangeKernel(ctx, ki, rem * B, rem * B);
            res.launches += 2;
        }
        ctx.finish();
    }
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    std::vector<float> out(uint64_t(n) * n);
    ocl::enqueueReadBuffer(ctx, b_a, true, 0, bytes, out.data());
    res.totalNs = ctx.hostNowNs() - t_total0;
    return finish(std::move(res), mat, std::move(out));
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Matrix &mat)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto fd = rt.loadFunction(kernels::buildLudDiagonal());
    auto fp = rt.loadFunction(kernels::buildLudPerimeter());
    auto fi = rt.loadFunction(kernels::buildLudInternal());

    double t_total0 = rt.hostNowNs();
    uint32_t n = mat.n, nb = n / B;
    uint64_t bytes = uint64_t(n) * n * 4;
    auto d_a = rt.malloc(bytes);
    rt.memcpyHtoD(d_a, mat.a.data(), bytes);

    double t0 = rt.hostNowNs();
    for (uint32_t t = 0; t < nb; ++t) {
        rt.launchKernel(fd, 1, 1, 1, {d_a}, {n, t});
        res.launches += 1;
        if (t + 1 < nb) {
            uint32_t rem = nb - t - 1;
            rt.launchKernel(fp, 2 * rem, 1, 1, {d_a}, {n, t, rem});
            rt.launchKernel(fi, rem, rem, 1, {d_a}, {n, t});
            res.launches += 2;
        }
        rt.deviceSynchronize();
    }
    res.kernelRegionNs = rt.hostNowNs() - t0;

    std::vector<float> out(uint64_t(n) * n);
    rt.memcpyDtoH(out.data(), d_a, bytes);
    res.totalNs = rt.hostNowNs() - t_total0;
    return finish(std::move(res), mat, std::move(out));
}

class LudBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "lud"; }
    std::string fullName() const override { return "LU Decomposition"; }
    std::string dwarf() const override
    {
        return "Dense Linear Algebra";
    }
    std::string domain() const override { return "Linear Algebra"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 256 / 512 / 2048.
        return {{"256", {128}}, {"512", {192}}, {"2048", {256}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"64", {64}}, {"256", {128}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Matrix m = generateMatrix(static_cast<uint32_t>(cfg.params[0]),
                                  workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, m);
          case sim::Api::OpenCl:
            return runOpenCl(dev, m);
          case sim::Api::Cuda:
            return runCuda(dev, m);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeLud()
{
    static LudBenchmark b;
    return &b;
}

} // namespace vcb::suite

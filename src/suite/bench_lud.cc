/**
 * @file
 * lud — LU Decomposition (Dense Linear Algebra), blocked 16x16.
 *
 * nb dependent steps of up to three kernels (diagonal, perimeter,
 * internal); the per-step pushes and dispatch sizes shrink with the
 * trailing submatrix, so the body varies per iteration: preferred
 * Vulkan strategy batched (one command buffer, three pipelines bound
 * per step), re-record as the sweepable baseline.  CUDA/OpenCL:
 * blocking multi-kernel iterations.  This is the benchmark whose
 * OpenCL build fails on the Snapdragon (paper Sec. V-B2), reproduced
 * via the Adreno driver profile.
 */

#include "suite/benchmark.h"

#include <cmath>
#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

constexpr uint32_t B = kernels::blockSize;

struct Matrix
{
    uint32_t n = 0;
    std::vector<float> a;
};

Matrix
generateMatrix(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Matrix m;
    m.n = static_cast<uint32_t>(alignUp(n, B));
    m.a.resize(uint64_t(m.n) * m.n);
    for (uint32_t i = 0; i < m.n; ++i) {
        float row_sum = 0;
        for (uint32_t j = 0; j < m.n; ++j) {
            float v = rng.nextFloat(0.01f, 1.0f);
            m.a[uint64_t(i) * m.n + j] = v;
            row_sum += v;
        }
        m.a[uint64_t(i) * m.n + i] = row_sum + 2.0f;
    }
    return m;
}

/** CPU reference: the same blocked algorithm in the same float order
 *  (diagonal, then perimeter row/column blocks, then internal). */
std::vector<float>
referenceLud(const Matrix &mat)
{
    uint32_t n = mat.n, nb = n / B;
    std::vector<float> a = mat.a;
    auto at = [&](uint32_t r, uint32_t c) -> float & {
        return a[uint64_t(r) * n + c];
    };
    for (uint32_t t = 0; t < nb; ++t) {
        uint32_t base = t * B;
        // Diagonal block.
        for (uint32_t i = 0; i + 1 < B; ++i)
            for (uint32_t j = i + 1; j < B; ++j) {
                at(base + j, base + i) /= at(base + i, base + i);
                float l = at(base + j, base + i);
                for (uint32_t k = i + 1; k < B; ++k)
                    at(base + j, base + k) -= l * at(base + i, base + k);
            }
        if (t + 1 == nb)
            break;
        // Perimeter row blocks (U panels).
        for (uint32_t cb = t + 1; cb < nb; ++cb)
            for (uint32_t j = 0; j < B; ++j)      // column of the block
                for (uint32_t i = 0; i < B; ++i) { // row (sequential)
                    float acc = at(base + i, cb * B + j);
                    for (uint32_t k = 0; k < i; ++k)
                        acc -= at(base + i, base + k) *
                               at(base + k, cb * B + j);
                    at(base + i, cb * B + j) = acc;
                }
        // Perimeter column blocks (L panels).
        for (uint32_t rb = t + 1; rb < nb; ++rb)
            for (uint32_t j = 0; j < B; ++j)       // row of the block
                for (uint32_t i = 0; i < B; ++i) { // column (sequential)
                    float acc = at(rb * B + j, base + i);
                    for (uint32_t k = 0; k < i; ++k)
                        acc -= at(rb * B + j, base + k) *
                               at(base + k, base + i);
                    at(rb * B + j, base + i) =
                        acc / at(base + i, base + i);
                }
        // Internal blocks.
        for (uint32_t rb = t + 1; rb < nb; ++rb)
            for (uint32_t cb = t + 1; cb < nb; ++cb)
                for (uint32_t i = 0; i < B; ++i)
                    for (uint32_t j = 0; j < B; ++j) {
                        float acc = 0;
                        for (uint32_t k = 0; k < B; ++k)
                            acc = std::fma(at(rb * B + i, base + k),
                                           at(base + k, cb * B + j),
                                           acc);
                        at(rb * B + i, cb * B + j) -= acc;
                    }
    }
    return a;
}

enum BufferIx : size_t { B_MAT };
enum HostIx : size_t { H_A };

Workload
makeWorkload(Matrix m)
{
    auto in = std::make_shared<const Matrix>(std::move(m));
    const Matrix &mat = *in;
    uint32_t n = mat.n, nb = n / B;

    Workload w;
    w.name = "lud";
    w.kernels = {kernels::buildLudDiagonal(), kernels::buildLudPerimeter(),
                 kernels::buildLudInternal()};
    w.buffers = {{uint64_t(n) * n * 4, wordsOf(mat.a)}};
    w.host = {std::vector<uint32_t>(uint64_t(n) * n)};

    w.bodyFor = [n, nb](uint32_t t) {
        std::vector<WorkloadStep> steps = {
            dispatchStep(0, 1, 1, 1, {pw(n), pw(t)}, {{0, B_MAT}}),
            barrierStep()};
        if (t + 1 < nb) {
            uint32_t rem = nb - t - 1;
            steps.push_back(dispatchStep(1, 2 * rem, 1, 1,
                                         {pw(n), pw(t), pw(rem)},
                                         {{0, B_MAT}}));
            steps.push_back(barrierStep());
            steps.push_back(dispatchStep(2, rem, rem, 1,
                                         {pw(n), pw(t)}, {{0, B_MAT}}));
            steps.push_back(barrierStep());
        }
        steps.push_back(syncStep());
        return steps;
    };
    w.iterations = nb;
    w.epilogue = {readbackStep(B_MAT, H_A)};
    w.preferred = SubmitStrategy::Batched;
    w.validate = [in](const HostArrays &h) {
        return compareFloats(floatsOf(h[H_A]), referenceLud(*in), 5e-3,
                             1e-3);
    };
    return w;
}

class LudBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "lud"; }
    std::string fullName() const override { return "LU Decomposition"; }
    std::string dwarf() const override
    {
        return "Dense Linear Algebra";
    }
    std::string domain() const override { return "Linear Algebra"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 256 / 512 / 2048.
        return {{"256", {128}}, {"512", {192}}, {"2048", {256}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"64", {64}}, {"256", {128}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateMatrix(static_cast<uint32_t>(cfg.params[0]),
                           workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeLud()
{
    static LudBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * Vulkan-side boilerplate for the benchmark runners.
 *
 * The paper stresses Vulkan's verbosity (~40 lines per buffer); these
 * helpers concentrate the buffer/memory/pipeline ceremony so the
 * benchmark runner implementations stay readable, while still
 * exercising the full API path (staging uploads through the transfer
 * queue on discrete GPUs, mapped memory on unified-memory mobiles).
 */

#ifndef VCB_SUITE_VKHELP_H
#define VCB_SUITE_VKHELP_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/device.h"
#include "vkm/vkm.h"

namespace vcb::suite {

/** Everything a Vulkan benchmark run needs from instance to pools. */
struct VkContext
{
    vkm::Instance instance;
    vkm::PhysicalDevice phys;
    vkm::Device device;
    vkm::Queue queue;         ///< compute family, queue 0
    vkm::Queue transferQueue; ///< transfer family, queue 0
    /** Every compute-family queue the spec exposes (queue 0 first);
     *  the multi-queue workload scheduler spreads independent
     *  dispatch chains across these. */
    std::vector<vkm::Queue> computeQueues;
    vkm::CommandPool cmdPool;
    vkm::DescriptorPool descPool;
    bool unified = false;

    /** Build the full context for one simulated device (fatal on
     *  internal errors — the device is known to support Vulkan). */
    static VkContext create(const sim::DeviceSpec &spec);

    /** Device-local storage buffer (plus transfer usage).  Invalid on
     *  heap exhaustion (ErrorOutOfDeviceMemory) so callers can skip
     *  the workload — same failure surface as ocl/cuda allocation. */
    vkm::Buffer createDeviceBuffer(uint64_t bytes);
    /** Host-visible storage buffer (stop flags, staging); invalid on
     *  host-visible heap exhaustion. */
    vkm::Buffer createHostBuffer(uint64_t bytes);

    /** Upload through a staging buffer + transfer queue (discrete) or
     *  a direct map (unified).  False when the staging allocation runs
     *  the host-visible heap out of memory. */
    bool upload(vkm::Buffer dst, const void *src, uint64_t bytes);
    /** Download, mirroring upload. */
    bool download(vkm::Buffer src, void *dst, uint64_t bytes);

    /** Persistently map a host-visible buffer. */
    uint32_t *map(vkm::Buffer buf);

    /** Simulated host clock. */
    double now() const;
};

/** A compiled kernel with its layout chain. */
struct VkKernel
{
    vkm::ShaderModule module;
    vkm::DescriptorSetLayout dsl;
    vkm::PipelineLayout layout;
    vkm::Pipeline pipeline;
};

/**
 * Build shader module + descriptor-set layout + pipeline layout +
 * pipeline for an IR module.
 * @return empty string on success; else the reason (e.g. the modelled
 *         driver failures on the mobile parts), for RunResult::skip.
 */
std::string createVkKernel(VkContext &ctx, const spirv::Module &m,
                           VkKernel *out);

/** Allocate and write a descriptor set for (binding, buffer) pairs. */
vkm::DescriptorSet
makeDescriptorSet(VkContext &ctx, const VkKernel &k,
                  const std::vector<std::pair<uint32_t, vkm::Buffer>>
                      &bindings);

} // namespace vcb::suite

#endif // VCB_SUITE_VKHELP_H

#include "suite/workloads.h"

#include <bit>
#include <cstddef>
#include <deque>

#include "common/rng.h"

namespace vcb::suite {

std::vector<uint32_t>
wordsOf(const std::vector<float> &v)
{
    std::vector<uint32_t> w(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        w[i] = std::bit_cast<uint32_t>(v[i]);
    return w;
}

std::vector<uint32_t>
wordsOf(const std::vector<int32_t> &v)
{
    std::vector<uint32_t> w(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        w[i] = static_cast<uint32_t>(v[i]);
    return w;
}

std::vector<float>
floatsOf(const std::vector<uint32_t> &w)
{
    std::vector<float> v(w.size());
    for (size_t i = 0; i < w.size(); ++i)
        v[i] = std::bit_cast<float>(w[i]);
    return v;
}

std::vector<int32_t>
intsOf(const std::vector<uint32_t> &w)
{
    std::vector<int32_t> v(w.size());
    for (size_t i = 0; i < w.size(); ++i)
        v[i] = static_cast<int32_t>(w[i]);
    return v;
}

Graph
generateBfsGraph(uint32_t n, uint64_t seed, uint32_t min_degree,
                 uint32_t degree_spread)
{
    Rng rng(seed);
    Graph g;
    g.n = n;
    g.start.resize(n);
    g.degree.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        g.start[i] = static_cast<int32_t>(g.edges.size());
        uint32_t deg =
            min_degree + static_cast<uint32_t>(rng.nextBelow(degree_spread));
        g.degree[i] = static_cast<int32_t>(deg);
        for (uint32_t e = 0; e < deg; ++e)
            g.edges.push_back(static_cast<int32_t>(rng.nextBelow(n)));
    }
    return g;
}

std::vector<int32_t>
referenceBfs(const Graph &g)
{
    std::vector<int32_t> cost(g.n, -1);
    std::deque<int32_t> frontier;
    cost[g.source] = 0;
    frontier.push_back(g.source);
    while (!frontier.empty()) {
        int32_t u = frontier.front();
        frontier.pop_front();
        for (int32_t e = g.start[u]; e < g.start[u] + g.degree[u]; ++e) {
            int32_t v = g.edges[e];
            if (cost[v] < 0) {
                cost[v] = cost[u] + 1;
                frontier.push_back(v);
            }
        }
    }
    return cost;
}

BfsHostState::BfsHostState(const Graph &g)
    : mask(g.n, 0), umask(g.n, 0), visited(g.n, 0), cost(g.n, -1)
{
    mask[g.source] = 1;
    visited[g.source] = 1;
    cost[g.source] = 0;
}

} // namespace vcb::suite

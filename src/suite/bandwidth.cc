#include "suite/bandwidth.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

std::vector<float>
sourceData(uint64_t words)
{
    Rng rng(0xbead);
    std::vector<float> data(words);
    for (auto &v : data)
        v = rng.nextFloat(0.0f, 1.0f);
    return data;
}

std::vector<BandwidthPoint>
sweepVulkan(const sim::DeviceSpec &dev,
            const std::vector<uint32_t> &strides,
            const BandwidthConfig &cfg)
{
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err = createVkKernel(ctx, kernels::buildStridedRead(), &k);
    VCB_ASSERT(err.empty(), "stridedRead rejected: %s", err.c_str());

    uint32_t max_stride = *std::max_element(strides.begin(),
                                            strides.end());
    uint64_t words = uint64_t(cfg.threads) * 8 * max_stride;
    auto src = sourceData(words);
    auto b_src = ctx.createDeviceBuffer(words * 4);
    auto b_guard = ctx.createDeviceBuffer(4);
    ctx.upload(b_src, src.data(), words * 4);
    auto set = makeDescriptorSet(ctx, k, {{0, b_src}, {1, b_guard}});

    // One command buffer for the whole sweep; stride varies via
    // vkCmdPushConstants, per-stride device windows via timestamps.
    vkm::QueryPool pool;
    vkm::check(vkm::createQueryPool(
                   ctx.device,
                   {static_cast<uint32_t>(strides.size()) * 2}, &pool),
               "createQueryPool");
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
    uint32_t groups = cfg.threads / 256;
    for (uint32_t i = 0; i < strides.size(); ++i) {
        vkm::cmdWriteTimestamp(cb, pool, 2 * i);
        for (uint32_t r = 0; r < cfg.repeats; ++r) {
            uint32_t push[3] = {strides[i], cfg.rounds, cfg.threads};
            vkm::cmdPushConstants(cb, k.layout, 0, 12, push);
            vkm::cmdDispatch(cb, groups, 1, 1);
            vkm::cmdPipelineBarrier(cb);
        }
        vkm::cmdWriteTimestamp(cb, pool, 2 * i + 1);
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");

    std::vector<double> ts;
    vkm::check(vkm::getQueryPoolResults(
                   ctx.device, pool, 0,
                   static_cast<uint32_t>(strides.size()) * 2, &ts),
               "getQueryPoolResults");

    double useful = double(cfg.threads) * cfg.rounds * 4.0 * cfg.repeats;
    std::vector<BandwidthPoint> points;
    for (uint32_t i = 0; i < strides.size(); ++i) {
        double window = ts[2 * i + 1] - ts[2 * i];
        points.push_back({strides[i], useful / window});
    }
    return points;
}

std::vector<BandwidthPoint>
sweepOpenCl(const sim::DeviceSpec &dev,
            const std::vector<uint32_t> &strides,
            const BandwidthConfig &cfg)
{
    ocl::Context ctx(dev);
    auto prog =
        ocl::createProgramWithSource(ctx, kernels::buildStridedRead());
    std::string err;
    bool built = ocl::buildProgram(prog, &err);
    VCB_ASSERT(built, "stridedRead build failed: %s", err.c_str());
    auto k = ocl::createKernel(prog, "stridedRead", &err);
    VCB_ASSERT(k.valid(), "%s", err.c_str());

    uint32_t max_stride = *std::max_element(strides.begin(),
                                            strides.end());
    uint64_t words = uint64_t(cfg.threads) * 8 * max_stride;
    auto src = sourceData(words);
    auto b_src = ocl::createBuffer(ctx, ocl::MemReadOnly, words * 4);
    auto b_guard = ocl::createBuffer(ctx, ocl::MemReadWrite, 4);
    ocl::enqueueWriteBuffer(ctx, b_src, true, 0, words * 4, src.data());

    ocl::setKernelArgBuffer(k, 0, b_src);
    ocl::setKernelArgBuffer(k, 1, b_guard);

    double useful = double(cfg.threads) * cfg.rounds * 4.0 * cfg.repeats;
    std::vector<BandwidthPoint> points;
    for (uint32_t stride : strides) {
        ocl::setKernelArgScalar(k, 0, stride);
        ocl::setKernelArgScalar(k, 1, cfg.rounds);
        ocl::setKernelArgScalar(k, 2, cfg.threads);
        ocl::Event first, last;
        for (uint32_t r = 0; r < cfg.repeats; ++r) {
            ocl::Event ev =
                ocl::enqueueNDRangeKernel(ctx, k, cfg.threads);
            if (r == 0)
                first = ev;
            last = ev;
        }
        ctx.finish();
        double window = last.endNs() - first.startNs();
        points.push_back({stride, useful / window});
    }
    return points;
}

std::vector<BandwidthPoint>
sweepCuda(const sim::DeviceSpec &dev,
          const std::vector<uint32_t> &strides,
          const BandwidthConfig &cfg)
{
    cuda::Runtime rt(dev);
    auto f = rt.loadFunction(kernels::buildStridedRead());

    uint32_t max_stride = *std::max_element(strides.begin(),
                                            strides.end());
    uint64_t words = uint64_t(cfg.threads) * 8 * max_stride;
    auto src = sourceData(words);
    auto d_src = rt.malloc(words * 4);
    auto d_guard = rt.malloc(4);
    rt.memcpyHtoD(d_src, src.data(), words * 4);

    uint32_t groups = cfg.threads / 256;
    double useful = double(cfg.threads) * cfg.rounds * 4.0 * cfg.repeats;
    std::vector<BandwidthPoint> points;
    for (uint32_t stride : strides) {
        double e1 = rt.eventRecordNs();
        for (uint32_t r = 0; r < cfg.repeats; ++r)
            rt.launchKernel(f, groups, 1, 1, {d_src, d_guard},
                            {stride, cfg.rounds, cfg.threads});
        double e2 = rt.eventRecordNs();
        rt.streamSynchronize();
        points.push_back({stride, useful / (e2 - e1)});
    }
    return points;
}

// ---------------------------------------------------------------------------
// Oversubscribed-bandwidth sweep
// ---------------------------------------------------------------------------

/** Thread count whose unit-stride working set (8 words per thread)
 *  best fills `ws_bytes`, rounded down to whole 256-wide groups. */
uint32_t
oversubThreads(uint64_t ws_bytes)
{
    uint64_t threads = ws_bytes / 4 / 8;
    threads -= threads % 256;
    return static_cast<uint32_t>(std::max<uint64_t>(threads, 256));
}

OversubPoint
oversubVulkan(const sim::DeviceSpec &dev, uint32_t threads,
              const OversubConfig &cfg)
{
    OversubPoint p;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err =
        createVkKernel(ctx, kernels::buildStridedRead(), &k);
    VCB_ASSERT(err.empty(), "stridedRead rejected: %s", err.c_str());

    uint64_t words = uint64_t(threads) * 8;
    auto b_src = ctx.createDeviceBuffer(words * 4);
    auto b_guard = ctx.createDeviceBuffer(4);
    if (!b_src.valid() || !b_guard.valid())
        return p; // exceeded even the paged cap: zero-bandwidth point
    auto src = sourceData(words);
    if (!ctx.upload(b_src, src.data(), words * 4))
        return p;
    auto set = makeDescriptorSet(ctx, k, {{0, b_src}, {1, b_guard}});

    vkm::QueryPool pool;
    vkm::check(vkm::createQueryPool(ctx.device, {2}, &pool),
               "createQueryPool");
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
    vkm::cmdWriteTimestamp(cb, pool, 0);
    for (uint32_t r = 0; r < cfg.repeats; ++r) {
        uint32_t push[3] = {1, cfg.rounds, threads};
        vkm::cmdPushConstants(cb, k.layout, 0, 12, push);
        vkm::cmdDispatch(cb, threads / 256, 1, 1);
        vkm::cmdPipelineBarrier(cb);
    }
    vkm::cmdWriteTimestamp(cb, pool, 1);
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");

    std::vector<double> ts;
    vkm::check(vkm::getQueryPoolResults(ctx.device, pool, 0, 2, &ts),
               "getQueryPoolResults");
    double useful =
        double(threads) * cfg.rounds * 4.0 * cfg.repeats;
    p.gbPerSec = useful / (ts[1] - ts[0]);
    p.migratedBytes = vkm::uvmMigratedBytes(ctx.device);
    p.faultNs = vkm::uvmFaultNs(ctx.device);
    return p;
}

OversubPoint
oversubOpenCl(const sim::DeviceSpec &dev, uint32_t threads,
              const OversubConfig &cfg)
{
    OversubPoint p;
    ocl::Context ctx(dev);
    auto prog =
        ocl::createProgramWithSource(ctx, kernels::buildStridedRead());
    std::string err;
    bool built = ocl::buildProgram(prog, &err);
    VCB_ASSERT(built, "stridedRead build failed: %s", err.c_str());
    auto k = ocl::createKernel(prog, "stridedRead", &err);
    VCB_ASSERT(k.valid(), "%s", err.c_str());

    uint64_t words = uint64_t(threads) * 8;
    auto b_src = ocl::createBuffer(ctx, ocl::MemReadOnly, words * 4);
    auto b_guard = ocl::createBuffer(ctx, ocl::MemReadWrite, 4);
    if (!b_src.valid() || !b_guard.valid())
        return p;
    auto src = sourceData(words);
    ocl::enqueueWriteBuffer(ctx, b_src, true, 0, words * 4, src.data());

    ocl::setKernelArgBuffer(k, 0, b_src);
    ocl::setKernelArgBuffer(k, 1, b_guard);
    ocl::setKernelArgScalar(k, 0, 1u);
    ocl::setKernelArgScalar(k, 1, cfg.rounds);
    ocl::setKernelArgScalar(k, 2, threads);
    ocl::Event first, last;
    for (uint32_t r = 0; r < cfg.repeats; ++r) {
        ocl::Event ev = ocl::enqueueNDRangeKernel(ctx, k, threads);
        if (r == 0)
            first = ev;
        last = ev;
    }
    ctx.finish();
    double useful =
        double(threads) * cfg.rounds * 4.0 * cfg.repeats;
    p.gbPerSec = useful / (last.endNs() - first.startNs());
    p.migratedBytes = ocl::uvmMigratedBytes(ctx);
    p.faultNs = ocl::uvmFaultNs(ctx);
    return p;
}

OversubPoint
oversubCuda(const sim::DeviceSpec &dev, uint32_t threads,
            const OversubConfig &cfg)
{
    OversubPoint p;
    cuda::Runtime rt(dev);
    auto f = rt.loadFunction(kernels::buildStridedRead());

    uint64_t words = uint64_t(threads) * 8;
    auto d_src = rt.malloc(words * 4);
    auto d_guard = rt.malloc(4);
    if (!d_src.valid() || !d_guard.valid())
        return p;
    auto src = sourceData(words);
    rt.memcpyHtoD(d_src, src.data(), words * 4);

    double e1 = rt.eventRecordNs();
    for (uint32_t r = 0; r < cfg.repeats; ++r)
        rt.launchKernel(f, threads / 256, 1, 1, {d_src, d_guard},
                        {1u, cfg.rounds, threads});
    double e2 = rt.eventRecordNs();
    rt.streamSynchronize();
    double useful =
        double(threads) * cfg.rounds * 4.0 * cfg.repeats;
    p.gbPerSec = useful / (e2 - e1);
    p.migratedBytes = cuda::uvmMigratedBytes(rt);
    p.faultNs = cuda::uvmFaultNs(rt);
    return p;
}

} // namespace

std::vector<OversubPoint>
runOversubSweep(const sim::DeviceSpec &dev, sim::Api api,
                const OversubConfig &cfg)
{
    VCB_ASSERT(!cfg.factors.empty(), "empty factor list");
    std::vector<OversubPoint> points;
    for (double factor : cfg.factors) {
        uint64_t ws = static_cast<uint64_t>(
            factor * double(dev.deviceHeapBytes));
        // Fresh context per factor: heap accounting (and thus the
        // paged-or-not placement decision) starts from zero.
        uint32_t threads = oversubThreads(ws);
        OversubPoint p;
        switch (api) {
          case sim::Api::Vulkan:
            p = oversubVulkan(dev, threads, cfg);
            break;
          case sim::Api::OpenCl:
            p = oversubOpenCl(dev, threads, cfg);
            break;
          case sim::Api::Cuda:
            p = oversubCuda(dev, threads, cfg);
            break;
        }
        p.factor = factor;
        p.workingSetBytes = uint64_t(threads) * 8 * 4;
        points.push_back(p);
    }
    return points;
}

std::vector<BandwidthPoint>
runBandwidthSweep(const sim::DeviceSpec &dev, sim::Api api,
                  const std::vector<uint32_t> &strides,
                  const BandwidthConfig &cfg)
{
    VCB_ASSERT(!strides.empty(), "empty stride list");
    VCB_ASSERT(cfg.threads % 256 == 0,
               "threads must be a multiple of the kernel local size");
    switch (api) {
      case sim::Api::Vulkan:
        return sweepVulkan(dev, strides, cfg);
      case sim::Api::OpenCl:
        return sweepOpenCl(dev, strides, cfg);
      case sim::Api::Cuda:
        return sweepCuda(dev, strides, cfg);
    }
    return {};
}

} // namespace vcb::suite

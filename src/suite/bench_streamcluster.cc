/**
 * @file
 * streamcluster — online clustering (Dense Linear Algebra / Data
 * Mining), the pgain evaluation loop of Rodinia streamcluster.
 *
 * Host structure (all APIs): for each candidate centre the device
 * evaluates every point's switch decision (branch-divergent pairwise
 * distances), then the host reads the per-point savings back, sums the
 * gain and — when profitable — reassigns the switched points before
 * the next candidate.  One dispatch and one blocking readback per
 * candidate on every API; the candidate index is a per-round push
 * value, so Vulkan re-records the command buffer every round
 * (re-record is the only applicable strategy, like srad).
 */

#include "suite/benchmark.h"

#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

struct Stream
{
    uint32_t n = 0, dim = 0, candidates = 0;
    std::vector<float> soa;    ///< dim x n coordinates
    std::vector<float> weight; ///< per-point weight
};

Stream
generateStream(uint32_t n, uint32_t dim, uint32_t candidates,
               uint64_t seed)
{
    Rng rng(seed);
    Stream st;
    st.n = n;
    st.dim = dim;
    st.candidates = candidates;
    st.soa.resize(uint64_t(dim) * n);
    for (auto &v : st.soa)
        v = rng.nextFloat(0.0f, 100.0f);
    st.weight.resize(n);
    for (auto &w : st.weight)
        w = rng.nextFloat(1.0f, 4.0f);
    return st;
}

uint32_t
candidateIndex(const Stream &st, uint32_t round)
{
    return (round * 97u + 13u) % st.n;
}

/** Mirror of the kernel's distance loop (ascending features, named
 *  temporaries) — switch decisions must match bit-for-bit. */
float
distTo(const Stream &st, uint32_t i, uint32_t x)
{
    float d = 0.0f;
    for (uint32_t j = 0; j < st.dim; ++j) {
        float diff = st.soa[size_t(j) * st.n + i] -
                     st.soa[size_t(j) * st.n + x];
        float sq = diff * diff;
        d = d + sq;
    }
    return d;
}

std::vector<float>
initialCost(const Stream &st)
{
    // Every point starts assigned to point 0.
    std::vector<float> cost(st.n);
    for (uint32_t i = 0; i < st.n; ++i)
        cost[i] = st.weight[i] * distTo(st, i, 0);
    return cost;
}

/** Host decision shared by the reference and the workload's host
 *  callback: sum the savings in index order; a profitable candidate
 *  captures its switched points. */
bool
applyCandidate(const Stream &st, uint32_t x,
               const std::vector<float> &lower,
               const std::vector<int32_t> &sw, std::vector<float> &cost)
{
    float gain = 0.0f;
    for (uint32_t i = 0; i < st.n; ++i)
        gain = gain + lower[i];
    if (!(gain > 0.0f))
        return false;
    for (uint32_t i = 0; i < st.n; ++i)
        if (sw[i])
            cost[i] = st.weight[i] * distTo(st, i, x);
    return true;
}

/** From-scratch CPU reference: final per-point assignment cost. */
std::vector<float>
referenceStreamcluster(const Stream &st)
{
    auto cost = initialCost(st);
    std::vector<float> lower(st.n);
    std::vector<int32_t> sw(st.n);
    for (uint32_t r = 0; r < st.candidates; ++r) {
        uint32_t x = candidateIndex(st, r);
        for (uint32_t i = 0; i < st.n; ++i) {
            float cost_new = st.weight[i] * distTo(st, i, x);
            if (cost_new < cost[i]) {
                lower[i] = cost[i] - cost_new;
                sw[i] = 1;
            } else {
                lower[i] = 0.0f;
                sw[i] = 0;
            }
        }
        applyCandidate(st, x, lower, sw, cost);
    }
    return cost;
}

enum BufferIx : size_t { B_SOA, B_W, B_COST, B_LOWER, B_SW };
enum HostIx : size_t { H_LOWER, H_SW, H_COST, H_APPLIED };

Workload
makeWorkload(Stream stream)
{
    auto in = std::make_shared<const Stream>(std::move(stream));
    const Stream &st = *in;
    uint64_t coord_bytes = uint64_t(st.dim) * st.n * 4;
    uint64_t n_bytes = uint64_t(st.n) * 4;

    Workload w;
    w.name = "streamcluster";
    w.kernels = {kernels::buildStreamclusterGain()};
    w.buffers = {{coord_bytes, wordsOf(st.soa)},
                 {n_bytes, wordsOf(st.weight)},
                 {n_bytes, wordsOf(initialCost(st))},
                 {n_bytes, {}},
                 {n_bytes, {}}};
    w.host = {std::vector<uint32_t>(st.n), std::vector<uint32_t>(st.n),
              wordsOf(initialCost(st)), {0u}};

    const uint32_t groups = (uint32_t)ceilDiv(st.n, 256);
    w.bodyFor = [in, groups](uint32_t r) {
        const Stream &s = *in;
        uint32_t x = candidateIndex(s, r);
        return std::vector<WorkloadStep>{
            dispatchStep(0, groups, 1, 1, {pw(s.n), pw(s.dim), pw(x)},
                         {{0, B_SOA},
                          {1, B_W},
                          {2, B_COST},
                          {3, B_LOWER},
                          {4, B_SW}}),
            readbackStep(B_LOWER, H_LOWER),
            readbackStep(B_SW, H_SW),
            hostStep([in, x](HostArrays &h) {
                std::vector<float> cost = floatsOf(h[H_COST]);
                bool applied =
                    applyCandidate(*in, x, floatsOf(h[H_LOWER]),
                                   intsOf(h[H_SW]), cost);
                h[H_COST] = wordsOf(cost);
                h[H_APPLIED][0] = applied ? 1 : 0;
            }),
            // A profitable candidate pushes the reassigned costs back.
            uploadIfStep(B_COST, H_COST, H_APPLIED, 0)};
    };
    w.iterations = st.candidates;
    w.preferred = SubmitStrategy::ReRecord;
    w.validate = [in](const HostArrays &h) {
        return compareFloats(floatsOf(h[H_COST]),
                             referenceStreamcluster(*in));
    };
    return w;
}

class StreamclusterBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "streamcluster"; }
    std::string fullName() const override { return "Stream Cluster"; }
    std::string dwarf() const override { return "Dense Linear Algebra"; }
    std::string domain() const override { return "Data Mining"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // params: {points, dimensions, candidate centres}.
        return {{"16K", {16384, 8, 8}},
                {"32K", {32768, 8, 8}},
                {"64K", {65536, 8, 8}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"2K", {2048, 8, 4}}, {"4K", {4096, 8, 4}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateStream(static_cast<uint32_t>(cfg.params[0]),
                           static_cast<uint32_t>(cfg.params[1]),
                           static_cast<uint32_t>(cfg.params[2]),
                           workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeStreamcluster()
{
    static StreamclusterBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * streamcluster — online clustering (Dense Linear Algebra / Data
 * Mining), the pgain evaluation loop of Rodinia streamcluster.
 *
 * Host structure (all APIs): for each candidate centre the device
 * evaluates every point's switch decision (branch-divergent pairwise
 * distances), then the host reads the per-point savings back, sums the
 * gain and — when profitable — reassigns the switched points before
 * the next candidate.  One dispatch and one blocking readback per
 * candidate on every API.
 */

#include "suite/benchmark.h"

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

struct Stream
{
    uint32_t n = 0, dim = 0, candidates = 0;
    std::vector<float> soa;    ///< dim x n coordinates
    std::vector<float> weight; ///< per-point weight
};

Stream
generateStream(uint32_t n, uint32_t dim, uint32_t candidates,
               uint64_t seed)
{
    Rng rng(seed);
    Stream st;
    st.n = n;
    st.dim = dim;
    st.candidates = candidates;
    st.soa.resize(uint64_t(dim) * n);
    for (auto &v : st.soa)
        v = rng.nextFloat(0.0f, 100.0f);
    st.weight.resize(n);
    for (auto &w : st.weight)
        w = rng.nextFloat(1.0f, 4.0f);
    return st;
}

uint32_t
candidateIndex(const Stream &st, uint32_t round)
{
    return (round * 97u + 13u) % st.n;
}

/** Mirror of the kernel's distance loop (ascending features, named
 *  temporaries) — switch decisions must match bit-for-bit. */
float
distTo(const Stream &st, uint32_t i, uint32_t x)
{
    float d = 0.0f;
    for (uint32_t j = 0; j < st.dim; ++j) {
        float diff = st.soa[size_t(j) * st.n + i] -
                     st.soa[size_t(j) * st.n + x];
        float sq = diff * diff;
        d = d + sq;
    }
    return d;
}

std::vector<float>
initialCost(const Stream &st)
{
    // Every point starts assigned to point 0.
    std::vector<float> cost(st.n);
    for (uint32_t i = 0; i < st.n; ++i)
        cost[i] = st.weight[i] * distTo(st, i, 0);
    return cost;
}

/** Host decision shared by the reference and every API path: sum the
 *  savings in index order; a profitable candidate captures its
 *  switched points. */
bool
applyCandidate(const Stream &st, uint32_t x,
               const std::vector<float> &lower,
               const std::vector<int32_t> &sw, std::vector<float> &cost)
{
    float gain = 0.0f;
    for (uint32_t i = 0; i < st.n; ++i)
        gain = gain + lower[i];
    if (!(gain > 0.0f))
        return false;
    for (uint32_t i = 0; i < st.n; ++i)
        if (sw[i])
            cost[i] = st.weight[i] * distTo(st, i, x);
    return true;
}

/** From-scratch CPU reference: final per-point assignment cost. */
std::vector<float>
referenceStreamcluster(const Stream &st)
{
    auto cost = initialCost(st);
    std::vector<float> lower(st.n);
    std::vector<int32_t> sw(st.n);
    for (uint32_t r = 0; r < st.candidates; ++r) {
        uint32_t x = candidateIndex(st, r);
        for (uint32_t i = 0; i < st.n; ++i) {
            float cost_new = st.weight[i] * distTo(st, i, x);
            if (cost_new < cost[i]) {
                lower[i] = cost[i] - cost_new;
                sw[i] = 1;
            } else {
                lower[i] = 0.0f;
                sw[i] = 0;
            }
        }
        applyCandidate(st, x, lower, sw, cost);
    }
    return cost;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const Stream &st)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err =
        createVkKernel(ctx, kernels::buildStreamclusterGain(), &k);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint64_t coord_bytes = uint64_t(st.dim) * st.n * 4;
    uint64_t n_bytes = uint64_t(st.n) * 4;
    auto b_soa = ctx.createDeviceBuffer(coord_bytes);
    auto b_w = ctx.createDeviceBuffer(n_bytes);
    auto b_cost = ctx.createDeviceBuffer(n_bytes);
    auto b_lower = ctx.createDeviceBuffer(n_bytes);
    auto b_sw = ctx.createDeviceBuffer(n_bytes);

    auto cost = initialCost(st);
    ctx.upload(b_soa, st.soa.data(), coord_bytes);
    ctx.upload(b_w, st.weight.data(), n_bytes);
    ctx.upload(b_cost, cost.data(), n_bytes);

    auto set = makeDescriptorSet(
        ctx, k,
        {{0, b_soa}, {1, b_w}, {2, b_cost}, {3, b_lower}, {4, b_sw}});

    const uint32_t groups = (uint32_t)ceilDiv(st.n, 256);
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    std::vector<float> lower(st.n);
    std::vector<int32_t> sw(st.n);

    double t0 = ctx.now();
    for (uint32_t r = 0; r < st.candidates; ++r) {
        uint32_t x = candidateIndex(st, r);
        // The candidate index is a push value, so the command buffer
        // is re-recorded per round (the descriptor set is stable).
        vkm::check(vkm::resetCommandBuffer(cb), "resetCommandBuffer");
        vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
        uint32_t push[3] = {st.n, st.dim, x};
        vkm::cmdBindPipeline(cb, k.pipeline);
        vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
        vkm::cmdPushConstants(cb, k.layout, 0, 12, push);
        vkm::cmdDispatch(cb, groups, 1, 1);
        vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
        vkm::check(vkm::resetFences(ctx.device, {fence}), "resetFences");
        res.launches += 1;

        ctx.download(b_lower, lower.data(), n_bytes);
        ctx.download(b_sw, sw.data(), n_bytes);
        if (applyCandidate(st, x, lower, sw, cost))
            ctx.upload(b_cost, cost.data(), n_bytes);
    }
    res.kernelRegionNs = ctx.now() - t0;
    res.totalNs = ctx.now() - t_total0;

    res.validationError = compareFloats(cost, referenceStreamcluster(st));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Stream &st)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto prog = ocl::createProgramWithSource(
        ctx, kernels::buildStreamclusterGain());
    std::string err;
    if (!ocl::buildProgram(prog, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k = ocl::createKernel(prog, "streamcluster_gain", &err);
    VCB_ASSERT(k.valid(), "kernel creation failed: %s", err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint64_t coord_bytes = uint64_t(st.dim) * st.n * 4;
    uint64_t n_bytes = uint64_t(st.n) * 4;
    auto b_soa = ocl::createBuffer(ctx, ocl::MemReadOnly, coord_bytes);
    auto b_w = ocl::createBuffer(ctx, ocl::MemReadOnly, n_bytes);
    auto b_cost = ocl::createBuffer(ctx, ocl::MemReadOnly, n_bytes);
    auto b_lower = ocl::createBuffer(ctx, ocl::MemReadWrite, n_bytes);
    auto b_sw = ocl::createBuffer(ctx, ocl::MemReadWrite, n_bytes);

    auto cost = initialCost(st);
    ocl::enqueueWriteBuffer(ctx, b_soa, true, 0, coord_bytes,
                            st.soa.data());
    ocl::enqueueWriteBuffer(ctx, b_w, true, 0, n_bytes, st.weight.data());
    ocl::enqueueWriteBuffer(ctx, b_cost, true, 0, n_bytes, cost.data());

    ocl::setKernelArgBuffer(k, 0, b_soa);
    ocl::setKernelArgBuffer(k, 1, b_w);
    ocl::setKernelArgBuffer(k, 2, b_cost);
    ocl::setKernelArgBuffer(k, 3, b_lower);
    ocl::setKernelArgBuffer(k, 4, b_sw);
    ocl::setKernelArgScalar(k, 0, st.n);
    ocl::setKernelArgScalar(k, 1, st.dim);

    uint32_t global = (uint32_t)ceilDiv(st.n, 256) * 256;
    std::vector<float> lower(st.n);
    std::vector<int32_t> sw(st.n);

    double t0 = ctx.hostNowNs();
    for (uint32_t r = 0; r < st.candidates; ++r) {
        uint32_t x = candidateIndex(st, r);
        ocl::setKernelArgScalar(k, 2, x);
        ocl::enqueueNDRangeKernel(ctx, k, global);
        res.launches += 1;
        ocl::enqueueReadBuffer(ctx, b_lower, true, 0, n_bytes,
                               lower.data());
        ocl::enqueueReadBuffer(ctx, b_sw, true, 0, n_bytes, sw.data());
        if (applyCandidate(st, x, lower, sw, cost))
            ocl::enqueueWriteBuffer(ctx, b_cost, true, 0, n_bytes,
                                    cost.data());
    }
    res.kernelRegionNs = ctx.hostNowNs() - t0;
    res.totalNs = ctx.hostNowNs() - t_total0;

    res.validationError = compareFloats(cost, referenceStreamcluster(st));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Stream &st)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f = rt.loadFunction(kernels::buildStreamclusterGain());

    double t_total0 = rt.hostNowNs();
    uint64_t coord_bytes = uint64_t(st.dim) * st.n * 4;
    uint64_t n_bytes = uint64_t(st.n) * 4;
    auto d_soa = rt.malloc(coord_bytes);
    auto d_w = rt.malloc(n_bytes);
    auto d_cost = rt.malloc(n_bytes);
    auto d_lower = rt.malloc(n_bytes);
    auto d_sw = rt.malloc(n_bytes);

    auto cost = initialCost(st);
    rt.memcpyHtoD(d_soa, st.soa.data(), coord_bytes);
    rt.memcpyHtoD(d_w, st.weight.data(), n_bytes);
    rt.memcpyHtoD(d_cost, cost.data(), n_bytes);

    uint32_t groups = (uint32_t)ceilDiv(st.n, 256);
    std::vector<float> lower(st.n);
    std::vector<int32_t> sw(st.n);

    double t0 = rt.hostNowNs();
    for (uint32_t r = 0; r < st.candidates; ++r) {
        uint32_t x = candidateIndex(st, r);
        rt.launchKernel(f, groups, 1, 1,
                        {d_soa, d_w, d_cost, d_lower, d_sw},
                        {st.n, st.dim, x});
        res.launches += 1;
        rt.memcpyDtoH(lower.data(), d_lower, n_bytes);
        rt.memcpyDtoH(sw.data(), d_sw, n_bytes);
        if (applyCandidate(st, x, lower, sw, cost))
            rt.memcpyHtoD(d_cost, cost.data(), n_bytes);
    }
    res.kernelRegionNs = rt.hostNowNs() - t0;
    res.totalNs = rt.hostNowNs() - t_total0;

    res.validationError = compareFloats(cost, referenceStreamcluster(st));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

class StreamclusterBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "streamcluster"; }
    std::string fullName() const override { return "Stream Cluster"; }
    std::string dwarf() const override { return "Dense Linear Algebra"; }
    std::string domain() const override { return "Data Mining"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // params: {points, dimensions, candidate centres}.
        return {{"16K", {16384, 8, 8}},
                {"32K", {32768, 8, 8}},
                {"64K", {65536, 8, 8}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"2K", {2048, 8, 4}}, {"4K", {4096, 8, 4}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Stream st =
            generateStream(static_cast<uint32_t>(cfg.params[0]),
                           static_cast<uint32_t>(cfg.params[1]),
                           static_cast<uint32_t>(cfg.params[2]),
                           workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, st);
          case sim::Api::OpenCl:
            return runOpenCl(dev, st);
          case sim::Api::Cuda:
            return runCuda(dev, st);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeStreamcluster()
{
    static StreamclusterBenchmark b;
    return &b;
}

} // namespace vcb::suite

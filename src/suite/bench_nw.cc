/**
 * @file
 * nw — Needleman-Wunsch DNA sequence alignment (Dynamic Programming).
 *
 * 2*nb-1 dependent launches over block anti-diagonals.  The hosts do
 * not need data between launches, so the OpenCL/CUDA runner enqueues
 * ahead on the in-order queue (no Sync steps in the body) — which is
 * why the paper groups nw with the benchmarks where all APIs perform
 * similarly.  The per-diagonal pushes and dispatch counts vary, so the
 * preferred Vulkan strategy is batched (all diagonals in one command
 * buffer), with re-record as the sweepable baseline.
 */

#include "suite/benchmark.h"

#include <algorithm>
#include <memory>

#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "suite/validate.h"
#include "suite/workloads.h"

namespace vcb::suite {

namespace {

constexpr uint32_t B = kernels::nwBlockSize;
constexpr int32_t penalty = 10;

struct Alignment
{
    uint32_t n = 0;  ///< payload dimension (multiple of 16)
    uint32_t nn = 0; ///< matrix dimension (n + 1, with border row/col)
    std::vector<int32_t> itemsets;  // nn * nn, border-initialised
    std::vector<int32_t> reference; // nn * nn similarity scores
};

Alignment
generateAlignment(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Alignment a;
    a.n = static_cast<uint32_t>(alignUp(n, B));
    a.nn = a.n + 1;
    a.itemsets.assign(uint64_t(a.nn) * a.nn, 0);
    a.reference.assign(uint64_t(a.nn) * a.nn, 0);
    for (uint32_t i = 1; i <= a.n; ++i)
        for (uint32_t j = 1; j <= a.n; ++j)
            a.reference[uint64_t(i) * a.nn + j] =
                static_cast<int32_t>(rng.nextRange(-4, 8));
    for (uint32_t i = 1; i <= a.n; ++i) {
        a.itemsets[uint64_t(i) * a.nn] =
            -static_cast<int32_t>(i) * penalty;
        a.itemsets[i] = -static_cast<int32_t>(i) * penalty;
    }
    return a;
}

std::vector<int32_t>
referenceNw(const Alignment &a)
{
    std::vector<int32_t> m = a.itemsets;
    for (uint32_t i = 1; i <= a.n; ++i) {
        for (uint32_t j = 1; j <= a.n; ++j) {
            int32_t diag = m[uint64_t(i - 1) * a.nn + (j - 1)] +
                           a.reference[uint64_t(i) * a.nn + j];
            int32_t up = m[uint64_t(i - 1) * a.nn + j] - penalty;
            int32_t left = m[uint64_t(i) * a.nn + (j - 1)] - penalty;
            m[uint64_t(i) * a.nn + j] =
                std::max(diag, std::max(up, left));
        }
    }
    return m;
}

enum BufferIx : size_t { B_ITEMS, B_REF };
enum HostIx : size_t { H_ITEMS };

Workload
makeWorkload(Alignment al)
{
    auto in = std::make_shared<const Alignment>(std::move(al));
    const Alignment &a = *in;
    uint64_t bytes = uint64_t(a.nn) * a.nn * 4;
    uint32_t nb = a.n / B;

    Workload w;
    w.name = "nw";
    w.kernels = {kernels::buildNwBlock()};
    w.buffers = {{bytes, wordsOf(a.itemsets)},
                 {bytes, wordsOf(a.reference)}};
    w.host = {std::vector<uint32_t>(uint64_t(a.nn) * a.nn)};

    uint32_t n = a.n;
    // Block anti-diagonal walk: s in [0, 2nb-1), x in [xStart, xEnd].
    w.bodyFor = [n, nb](uint32_t s) {
        uint32_t x_start = s >= nb ? s - nb + 1 : 0;
        uint32_t x_end = std::min(s, nb - 1);
        uint32_t count = x_end - x_start + 1;
        return std::vector<WorkloadStep>{
            dispatchStep(0, count, 1, 1,
                         {pw(n), pw(s), pw(x_start),
                          pw(static_cast<uint32_t>(penalty))},
                         {{0, B_ITEMS}, {1, B_REF}}),
            barrierStep()};
    };
    w.iterations = 2 * nb - 1;
    w.epilogue = {readbackStep(B_ITEMS, H_ITEMS)};
    w.preferred = SubmitStrategy::Batched;
    w.validate = [in](const HostArrays &h) {
        return compareInts(intsOf(h[H_ITEMS]), referenceNw(*in));
    };
    return w;
}

class NwBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "nw"; }
    std::string fullName() const override { return "Needleman-Wunsch"; }
    std::string dwarf() const override { return "Dynamic Programming"; }
    std::string domain() const override { return "Bioinformatics"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 4K / 8K / 16K sequence lengths.
        return {{"4K", {1024}}, {"8K", {1536}}, {"16K", {2048}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"1K", {384}}, {"2K", {512}}};
    }

    Workload workload(const SizeConfig &cfg) const override
    {
        return makeWorkload(
            generateAlignment(static_cast<uint32_t>(cfg.params[0]),
                              workloadSeed(name(), cfg)));
    }
};

} // namespace

const Benchmark *
makeNw()
{
    static NwBenchmark b;
    return &b;
}

} // namespace vcb::suite

/**
 * @file
 * nw — Needleman-Wunsch DNA sequence alignment (Dynamic Programming).
 *
 * 2*nb-1 dependent launches over block anti-diagonals.  The hosts do
 * not need data between launches, so CUDA/OpenCL enqueue ahead on the
 * in-order queue (no per-launch blocking) — which is why the paper
 * groups nw with the benchmarks where all APIs perform similarly.
 * Vulkan records all block diagonals into one command buffer.
 */

#include "suite/benchmark.h"

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/validate.h"
#include "suite/vkhelp.h"

namespace vcb::suite {

namespace {

constexpr uint32_t B = kernels::nwBlockSize;
constexpr int32_t penalty = 10;

struct Alignment
{
    uint32_t n = 0;  ///< payload dimension (multiple of 16)
    uint32_t nn = 0; ///< matrix dimension (n + 1, with border row/col)
    std::vector<int32_t> itemsets;  // nn * nn, border-initialised
    std::vector<int32_t> reference; // nn * nn similarity scores
};

Alignment
generateAlignment(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    Alignment a;
    a.n = static_cast<uint32_t>(alignUp(n, B));
    a.nn = a.n + 1;
    a.itemsets.assign(uint64_t(a.nn) * a.nn, 0);
    a.reference.assign(uint64_t(a.nn) * a.nn, 0);
    for (uint32_t i = 1; i <= a.n; ++i)
        for (uint32_t j = 1; j <= a.n; ++j)
            a.reference[uint64_t(i) * a.nn + j] =
                static_cast<int32_t>(rng.nextRange(-4, 8));
    for (uint32_t i = 1; i <= a.n; ++i) {
        a.itemsets[uint64_t(i) * a.nn] =
            -static_cast<int32_t>(i) * penalty;
        a.itemsets[i] = -static_cast<int32_t>(i) * penalty;
    }
    return a;
}

std::vector<int32_t>
referenceNw(const Alignment &a)
{
    std::vector<int32_t> m = a.itemsets;
    for (uint32_t i = 1; i <= a.n; ++i) {
        for (uint32_t j = 1; j <= a.n; ++j) {
            int32_t diag = m[uint64_t(i - 1) * a.nn + (j - 1)] +
                           a.reference[uint64_t(i) * a.nn + j];
            int32_t up = m[uint64_t(i - 1) * a.nn + j] - penalty;
            int32_t left = m[uint64_t(i) * a.nn + (j - 1)] - penalty;
            m[uint64_t(i) * a.nn + j] =
                std::max(diag, std::max(up, left));
        }
    }
    return m;
}

/** Block anti-diagonal walk shared by all runners: s in [0, 2nb-1),
 *  x in [xStart, xStart+count). */
struct DiagPlan
{
    uint32_t s, x_start, count;
};

std::vector<DiagPlan>
diagPlans(uint32_t nb)
{
    std::vector<DiagPlan> plans;
    for (uint32_t s = 0; s < 2 * nb - 1; ++s) {
        uint32_t x_start = s >= nb ? s - nb + 1 : 0;
        uint32_t x_end = std::min(s, nb - 1);
        plans.push_back({s, x_start, x_end - x_start + 1});
    }
    return plans;
}

RunResult
runVulkan(const sim::DeviceSpec &dev, const Alignment &a)
{
    RunResult res;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err = createVkKernel(ctx, kernels::buildNwBlock(), &k);
    if (!err.empty()) {
        res.skipReason = err;
        return res;
    }

    double t_total0 = ctx.now();
    uint64_t bytes = uint64_t(a.nn) * a.nn * 4;
    auto b_items = ctx.createDeviceBuffer(bytes);
    auto b_ref = ctx.createDeviceBuffer(bytes);
    ctx.upload(b_items, a.itemsets.data(), bytes);
    ctx.upload(b_ref, a.reference.data(), bytes);

    auto set = makeDescriptorSet(ctx, k, {{0, b_items}, {1, b_ref}});

    uint32_t nb = a.n / B;
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
    for (const DiagPlan &p : diagPlans(nb)) {
        uint32_t push[4] = {a.n, p.s, p.x_start,
                            static_cast<uint32_t>(penalty)};
        vkm::cmdPushConstants(cb, k.layout, 0, 16, push);
        vkm::cmdDispatch(cb, p.count, 1, 1);
        vkm::cmdPipelineBarrier(cb);
        res.launches += 1;
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    double t0 = ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    res.kernelRegionNs = ctx.now() - t0;

    std::vector<int32_t> out(uint64_t(a.nn) * a.nn);
    ctx.download(b_items, out.data(), bytes);
    res.totalNs = ctx.now() - t_total0;

    res.validationError = compareInts(out, referenceNw(a));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runOpenCl(const sim::DeviceSpec &dev, const Alignment &a)
{
    RunResult res;
    ocl::Context ctx(dev);
    auto prog = ocl::createProgramWithSource(ctx, kernels::buildNwBlock());
    std::string err;
    if (!ocl::buildProgram(prog, &err)) {
        res.skipReason = err;
        return res;
    }
    auto k = ocl::createKernel(prog, "nw_block", &err);
    VCB_ASSERT(k.valid(), "kernel creation failed: %s", err.c_str());

    double t_total0 = ctx.hostNowNs();
    uint64_t bytes = uint64_t(a.nn) * a.nn * 4;
    auto b_items = ocl::createBuffer(ctx, ocl::MemReadWrite, bytes);
    auto b_ref = ocl::createBuffer(ctx, ocl::MemReadOnly, bytes);
    ocl::enqueueWriteBuffer(ctx, b_items, true, 0, bytes,
                            a.itemsets.data());
    ocl::enqueueWriteBuffer(ctx, b_ref, true, 0, bytes,
                            a.reference.data());

    ocl::setKernelArgBuffer(k, 0, b_items);
    ocl::setKernelArgBuffer(k, 1, b_ref);

    uint32_t nb = a.n / B;
    double t0 = ctx.hostNowNs();
    // Enqueue-ahead: the in-order queue resolves the inter-diagonal
    // dependencies; a single finish at the end.
    for (const DiagPlan &p : diagPlans(nb)) {
        ocl::setKernelArgScalar(k, 0, a.n);
        ocl::setKernelArgScalar(k, 1, p.s);
        ocl::setKernelArgScalar(k, 2, p.x_start);
        ocl::setKernelArgScalar(k, 3, static_cast<uint32_t>(penalty));
        ocl::enqueueNDRangeKernel(ctx, k, p.count * B);
        res.launches += 1;
    }
    ctx.finish();
    res.kernelRegionNs = ctx.hostNowNs() - t0;

    std::vector<int32_t> out(uint64_t(a.nn) * a.nn);
    ocl::enqueueReadBuffer(ctx, b_items, true, 0, bytes, out.data());
    res.totalNs = ctx.hostNowNs() - t_total0;

    res.validationError = compareInts(out, referenceNw(a));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

RunResult
runCuda(const sim::DeviceSpec &dev, const Alignment &a)
{
    RunResult res;
    if (!cuda::available(dev)) {
        res.skipReason = "CUDA not supported on this device";
        return res;
    }
    cuda::Runtime rt(dev);
    auto f = rt.loadFunction(kernels::buildNwBlock());

    double t_total0 = rt.hostNowNs();
    uint64_t bytes = uint64_t(a.nn) * a.nn * 4;
    auto d_items = rt.malloc(bytes);
    auto d_ref = rt.malloc(bytes);
    rt.memcpyHtoD(d_items, a.itemsets.data(), bytes);
    rt.memcpyHtoD(d_ref, a.reference.data(), bytes);

    uint32_t nb = a.n / B;
    double t0 = rt.hostNowNs();
    for (const DiagPlan &p : diagPlans(nb)) {
        rt.launchKernel(f, p.count, 1, 1, {d_items, d_ref},
                        {a.n, p.s, p.x_start,
                         static_cast<uint32_t>(penalty)});
        res.launches += 1;
    }
    rt.deviceSynchronize();
    res.kernelRegionNs = rt.hostNowNs() - t0;

    std::vector<int32_t> out(uint64_t(a.nn) * a.nn);
    rt.memcpyDtoH(out.data(), d_items, bytes);
    res.totalNs = rt.hostNowNs() - t_total0;

    res.validationError = compareInts(out, referenceNw(a));
    res.validated = res.validationError.empty();
    res.ok = true;
    return res;
}

class NwBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "nw"; }
    std::string fullName() const override { return "Needleman-Wunsch"; }
    std::string dwarf() const override { return "Dynamic Programming"; }
    std::string domain() const override { return "Bioinformatics"; }

    std::vector<SizeConfig> desktopSizes() const override
    {
        // Paper: 4K / 8K / 16K sequence lengths.
        return {{"4K", {1024}}, {"8K", {1536}}, {"16K", {2048}}};
    }
    std::vector<SizeConfig> mobileSizes() const override
    {
        return {{"1K", {384}}, {"2K", {512}}};
    }

    RunResult run(const sim::DeviceSpec &dev, sim::Api api,
                  const SizeConfig &cfg) const override
    {
        Alignment a = generateAlignment(
            static_cast<uint32_t>(cfg.params[0]),
            workloadSeed(name(), cfg));
        switch (api) {
          case sim::Api::Vulkan:
            return runVulkan(dev, a);
          case sim::Api::OpenCl:
            return runOpenCl(dev, a);
          case sim::Api::Cuda:
            return runCuda(dev, a);
        }
        return RunResult();
    }
};

} // namespace

const Benchmark *
makeNw()
{
    static NwBenchmark b;
    return &b;
}

} // namespace vcb::suite

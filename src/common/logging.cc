#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace vcb {

namespace {
bool verboseEnabled = true;
} // namespace

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

} // namespace vcb

/**
 * @file
 * Small string helpers used by the disassembler, reports and CLIs.
 */

#ifndef VCB_COMMON_STRUTIL_H
#define VCB_COMMON_STRUTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace vcb {

/** Split on a delimiter; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** True if s starts with prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case ASCII copy. */
std::string toLower(const std::string &s);

/** Human-readable byte count, e.g. "4.0 MiB". */
std::string formatBytes(uint64_t bytes);

/** Human-readable simulated duration from nanoseconds, e.g. "12.4 us". */
std::string formatNs(double ns);

/** Pad/truncate to exactly width columns (left-aligned). */
std::string padRight(const std::string &s, size_t width);

/** Pad to at least width columns (right-aligned). */
std::string padLeft(const std::string &s, size_t width);

/** Parse a non-negative integer with optional K/M/G suffix (powers of 2). */
uint64_t parseSize(const std::string &s);

} // namespace vcb

#endif // VCB_COMMON_STRUTIL_H

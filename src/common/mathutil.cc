#include "common/mathutil.h"

#include <algorithm>
#include <cmath>

namespace vcb {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
relError(double a, double b, double eps)
{
    double denom = std::max(std::abs(b), eps);
    return std::abs(a - b) / denom;
}

} // namespace vcb

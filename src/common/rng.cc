#include "common/rng.h"

#include "common/logging.h"

namespace vcb {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    VCB_ASSERT(bound > 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    VCB_ASSERT(lo <= hi, "nextRange(%lld, %lld)", (long long)lo,
               (long long)hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBelow(span));
}

float
Rng::nextFloat()
{
    // 24 high-quality bits -> [0, 1).
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
}

float
Rng::nextFloat(float lo, float hi)
{
    return lo + (hi - lo) * nextFloat();
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace vcb

/**
 * @file
 * Status and error reporting helpers, modelled on the gem5 conventions.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the *user* asked for something impossible (bad configuration,
 *            invalid argument); exits with status 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 */

#ifndef VCB_COMMON_LOGGING_H
#define VCB_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace vcb {

/** Abort with a formatted message; use for internal bugs only. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user/config errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (warnings always print). */
void setVerbose(bool verbose);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

} // namespace vcb

/** Assert-like macro that survives NDEBUG: used for simulator invariants. */
#define VCB_ASSERT(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::vcb::panic("assertion '%s' failed at %s:%d: %s", #cond,     \
                         __FILE__, __LINE__,                              \
                         ::vcb::strprintf(__VA_ARGS__).c_str());          \
        }                                                                 \
    } while (0)

#endif // VCB_COMMON_LOGGING_H

#include "common/strutil.h"

#include <cctype>
#include <cstdlib>

#include "common/logging.h"

namespace vcb {

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
formatBytes(uint64_t bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (v >= 1024.0 && u < 4) {
        v /= 1024.0;
        ++u;
    }
    if (u == 0)
        return strprintf("%llu B", (unsigned long long)bytes);
    return strprintf("%.1f %s", v, units[u]);
}

std::string
formatNs(double ns)
{
    if (ns < 1e3)
        return strprintf("%.0f ns", ns);
    if (ns < 1e6)
        return strprintf("%.2f us", ns / 1e3);
    if (ns < 1e9)
        return strprintf("%.3f ms", ns / 1e6);
    return strprintf("%.4f s", ns / 1e9);
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

uint64_t
parseSize(const std::string &raw)
{
    std::string s = trim(raw);
    if (s.empty())
        fatal("parseSize: empty string");
    uint64_t mult = 1;
    char last = static_cast<char>(
        std::tolower(static_cast<unsigned char>(s.back())));
    if (last == 'k')
        mult = 1ull << 10;
    else if (last == 'm')
        mult = 1ull << 20;
    else if (last == 'g')
        mult = 1ull << 30;
    if (mult != 1)
        s.pop_back();
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        fatal("parseSize: cannot parse '%s'", raw.c_str());
    return v * mult;
}

} // namespace vcb

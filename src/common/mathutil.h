/**
 * @file
 * Small numeric helpers shared by the timing model and the harness.
 */

#ifndef VCB_COMMON_MATHUTIL_H
#define VCB_COMMON_MATHUTIL_H

#include <cstdint>
#include <vector>

namespace vcb {

/** ceil(a / b) for positive integers. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round a up to the next multiple of align (align must be a power of 2). */
constexpr uint64_t
alignUp(uint64_t a, uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** True if v is a power of two (v > 0). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Geometric mean of a series; empty series returns 0. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; empty series returns 0. */
double mean(const std::vector<double> &values);

/** Population standard deviation; series of <2 returns 0. */
double stddev(const std::vector<double> &values);

/** Median (averaging the middle pair for even sizes). */
double median(std::vector<double> values);

/** Relative error |a-b| / max(|b|, eps). */
double relError(double a, double b, double eps = 1e-12);

} // namespace vcb

#endif // VCB_COMMON_MATHUTIL_H

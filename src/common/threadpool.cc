#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/logging.h"

namespace vcb {

namespace {

/** Run one work item; any escaping exception is a simulator bug.
 *  Without this, a throw on the calling thread would propagate (and on
 *  a worker thread std::terminate) — panic keeps the documented
 *  contract on both paths. */
void
runItem(const std::function<void(uint64_t)> &fn, uint64_t i)
{
    try {
        fn(i);
    } catch (const std::exception &e) {
        panic("exception escaped a ThreadPool work item: %s", e.what());
    } catch (...) {
        panic("unknown exception escaped a ThreadPool work item");
    }
}

/** Same contract for whole-range work items. */
void
runRange(const std::function<void(uint64_t, uint64_t, unsigned)> &fn,
         uint64_t begin, uint64_t end, unsigned worker)
{
    try {
        fn(begin, end, worker);
    } catch (const std::exception &e) {
        panic("exception escaped a ThreadPool work range: %s", e.what());
    } catch (...) {
        panic("unknown exception escaped a ThreadPool work range");
    }
}

/** Depth of nested ScopedSerial scopes on this thread. */
thread_local int t_serialScopeDepth = 0;

} // namespace

ThreadPool::ScopedSerial::ScopedSerial() { ++t_serialScopeDepth; }

ThreadPool::ScopedSerial::~ScopedSerial() { --t_serialScopeDepth; }

bool
ThreadPool::serialScopeActive()
{
    return t_serialScopeDepth > 0;
}

ThreadPool::ThreadPool(int workers)
{
    unsigned n;
    if (workers < 0) {
        unsigned hw = std::thread::hardware_concurrency();
        n = hw > 1 ? hw - 1 : 1;
    } else {
        n = static_cast<unsigned>(workers);
    }
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &t : threads)
        t.join();
}

int
ThreadPool::globalWorkers()
{
    const char *env = std::getenv("VCB_THREADS");
    if (env && *env) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v >= 1 && v <= 4096)
            return static_cast<int>(v) - 1;
        warn("ignoring invalid VCB_THREADS='%s' (want 1..4096)", env);
    }
    return -1;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(globalWorkers());
    return pool;
}

void
ThreadPool::runJob(Job &job, unsigned worker)
{
    for (;;) {
        uint64_t begin = job.next.fetch_add(job.chunk);
        if (begin >= job.count)
            break;
        uint64_t end = std::min(begin + job.chunk, job.count);
        if (job.rangeFn) {
            runRange(*job.rangeFn, begin, end, worker);
        } else {
            for (uint64_t i = begin; i < end; ++i)
                runItem(*job.fn, i);
        }
        job.done.fetch_add(end - begin);
    }
}

void
ThreadPool::workerLoop(unsigned worker)
{
    uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(mtx);
            cv.wait(lk, [&] {
                return stopping || (current && generation != seen);
            });
            if (stopping)
                return;
            seen = generation;
            job = current;
        }
        runJob(*job, worker);
        cvDone.notify_all();
    }
}

void
ThreadPool::submitAndRun(const std::shared_ptr<Job> &job)
{
    // Aim for several chunks per worker to balance irregular work.
    uint64_t parts = (threads.size() + 1) * 8;
    job->chunk = std::max<uint64_t>(1, job->count / parts);

    {
        std::lock_guard<std::mutex> lk(mtx);
        current = job;
        ++generation;
    }
    cv.notify_all();

    runJob(*job, 0);

    // Wait for stragglers still inside their chunks.  The caller runs
    // chunks itself, so `done` always reaches `count` even when a
    // concurrent submission steals the workers away.
    if (job->done.load() != job->count) {
        std::unique_lock<std::mutex> lk(mtx);
        cvDone.wait(lk, [&] { return job->done.load() == job->count; });
    }
    {
        std::lock_guard<std::mutex> lk(mtx);
        // Only detach our own job: a concurrent submitter may already
        // have installed the next one.
        if (current == job)
            current.reset();
    }
}

void
ThreadPool::parallelFor(uint64_t count,
                        const std::function<void(uint64_t)> &fn)
{
    if (count == 0)
        return;
    // Small counts: run inline, skip synchronization entirely.
    if (count <= 2 || threads.empty() || serialScopeActive()) {
        for (uint64_t i = 0; i < count; ++i)
            runItem(fn, i);
        return;
    }

    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->count = count;
    submitAndRun(job);
}

void
ThreadPool::parallelForRange(
    uint64_t count,
    const std::function<void(uint64_t, uint64_t, unsigned)> &fn)
{
    if (count == 0)
        return;
    // Below kSerialGrain the submit/wake/join handshake costs more
    // than the fan-out recovers (measured — see header comment), so
    // run the whole range inline on the caller.
    if (count <= kSerialGrain || threads.empty() || serialScopeActive()) {
        runRange(fn, 0, count, 0);
        return;
    }

    auto job = std::make_shared<Job>();
    job->rangeFn = &fn;
    job->count = count;
    submitAndRun(job);
}

} // namespace vcb

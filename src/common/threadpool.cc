#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/logging.h"

namespace vcb {

namespace {

/** Run one work item; any escaping exception is a simulator bug.
 *  Without this, a throw on the calling thread would propagate (and on
 *  a worker thread std::terminate) — panic keeps the documented
 *  contract on both paths. */
void
runItem(const std::function<void(uint64_t)> &fn, uint64_t i)
{
    try {
        fn(i);
    } catch (const std::exception &e) {
        panic("exception escaped a ThreadPool work item: %s", e.what());
    } catch (...) {
        panic("unknown exception escaped a ThreadPool work item");
    }
}

} // namespace

ThreadPool::ThreadPool(unsigned workers)
{
    unsigned n = workers;
    if (n == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        n = hw > 1 ? hw - 1 : 1;
    }
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &t : threads)
        t.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::runJob(Job &job)
{
    for (;;) {
        uint64_t begin = job.next.fetch_add(job.chunk);
        if (begin >= job.count)
            break;
        uint64_t end = std::min(begin + job.chunk, job.count);
        for (uint64_t i = begin; i < end; ++i)
            runItem(*job.fn, i);
        job.done.fetch_add(end - begin);
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(mtx);
            cv.wait(lk, [&] {
                return stopping || (current && generation != seen);
            });
            if (stopping)
                return;
            seen = generation;
            job = current;
        }
        runJob(*job);
        cvDone.notify_all();
    }
}

void
ThreadPool::parallelFor(uint64_t count,
                        const std::function<void(uint64_t)> &fn)
{
    if (count == 0)
        return;
    // Small counts: run inline, skip synchronization entirely.
    if (count <= 2 || threads.empty()) {
        for (uint64_t i = 0; i < count; ++i)
            runItem(fn, i);
        return;
    }

    Job job;
    job.fn = &fn;
    job.count = count;
    // Aim for several chunks per worker to balance irregular work.
    uint64_t parts = (threads.size() + 1) * 8;
    job.chunk = std::max<uint64_t>(1, count / parts);

    {
        std::lock_guard<std::mutex> lk(mtx);
        current = &job;
        ++generation;
    }
    cv.notify_all();

    runJob(job);

    // Wait for stragglers still inside their chunks.
    if (job.done.load() != count) {
        std::unique_lock<std::mutex> lk(mtx);
        cvDone.wait(lk, [&] { return job.done.load() == count; });
    }
    {
        std::lock_guard<std::mutex> lk(mtx);
        current = nullptr;
    }
}

} // namespace vcb

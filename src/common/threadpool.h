/**
 * @file
 * Fixed-size thread pool with parallel-for helpers.
 *
 * The execution engine interprets workgroups of a dispatch in parallel;
 * workgroups are independent (cross-workgroup communication requires a
 * new dispatch in every supported programming model), so a simple
 * chunked parallel-for is sufficient.  parallelForRange() hands each
 * participant whole index ranges plus a stable worker slot, letting
 * callers keep per-worker accumulator state and amortize per-item
 * overhead across a chunk.
 */

#ifndef VCB_COMMON_THREADPOOL_H
#define VCB_COMMON_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vcb {

/** A fixed pool of worker threads executing chunked index ranges. */
class ThreadPool
{
  public:
    /**
     * Range counts at or below this run inline on the calling thread:
     * measured on the reference mix (vcb_perf), dispatches this small
     * pay the submit/wake/join handshake for ~0% gain (BENCH_perf.json
     * showed threads1 ≈ threads4 overall because the mix is dominated
     * by sub-kSerialGrain dispatches).  See docs/ARCHITECTURE.md
     * ("Engine parallelism") for the measurement.
     */
    static constexpr uint64_t kSerialGrain = 64;

    /**
     * While alive, parallelFor/parallelForRange invoked from the
     * constructing thread run inline (serially) regardless of pool
     * size.  Outer coarse-grain parallelism (the sweep executor in
     * src/harness/sweep.cc) installs one per worker so nested dispatch
     * fan-out does not oversubscribe the machine.  Nestable; scoped to
     * the thread, so other threads' submissions are unaffected.
     */
    class ScopedSerial
    {
      public:
        ScopedSerial();
        ~ScopedSerial();
        ScopedSerial(const ScopedSerial &) = delete;
        ScopedSerial &operator=(const ScopedSerial &) = delete;
    };

    /** True when a ScopedSerial is active on the calling thread. */
    static bool serialScopeActive();

    /**
     * @param workers Number of worker threads: negative = size to the
     *                hardware (concurrency - 1, at least 1); 0 = no
     *                workers, everything runs on the calling thread.
     */
    explicit ThreadPool(int workers = -1);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run fn(i) for every i in [0, count); blocks until all complete.
     * fn runs concurrently on pool threads and the calling thread.
     * Exceptions escaping fn are fatal (panic) — simulator work items
     * must not throw.
     */
    void parallelFor(uint64_t count,
                     const std::function<void(uint64_t)> &fn);

    /**
     * Run fn(begin, end, worker) over disjoint chunks covering
     * [0, count); blocks until all complete.  worker identifies the
     * executing thread's slot — 0 for the calling thread, 1..
     * workerCount() for pool threads — so callers can keep per-worker
     * state without locks or thread_locals.  Same exception contract
     * as parallelFor.
     */
    void parallelForRange(
        uint64_t count,
        const std::function<void(uint64_t, uint64_t, unsigned)> &fn);

    /** Number of worker threads (not counting the caller). */
    unsigned workerCount() const { return (unsigned)threads.size(); }

    /**
     * Process-wide shared pool.  Sized at first use from VCB_THREADS
     * (total executing threads including the caller, i.e. 1 = fully
     * serial) when set and valid, otherwise to the hardware.
     */
    static ThreadPool &global();

    /**
     * Worker-thread count the global pool will use: VCB_THREADS - 1
     * when the environment override is set and valid (clamped to
     * [1, 4096] total threads), -1 (hardware default) otherwise.
     * Exposed for tests and tools.
     */
    static int globalWorkers();

  private:
    /**
     * One parallel-for invocation.  Heap-owned (shared_ptr) so a worker
     * that claims an empty chunk AFTER the submitting thread observed
     * completion and returned touches live memory, never a dead stack
     * frame — the submitter's fn/rangeFn pointers may dangle by then,
     * but an empty claim never invokes them.  This also makes
     * submitAndRun safe for CONCURRENT submitters (serve sessions):
     * each caller completes its own job even when another submission
     * replaces `current` underneath it.
     */
    struct Job
    {
        /** Exactly one of fn / rangeFn is set. */
        const std::function<void(uint64_t)> *fn = nullptr;
        const std::function<void(uint64_t, uint64_t, unsigned)>
            *rangeFn = nullptr;
        std::atomic<uint64_t> next{0};
        uint64_t count = 0;
        uint64_t chunk = 1;
        std::atomic<uint64_t> done{0};
    };

    void workerLoop(unsigned worker);
    void runJob(Job &job, unsigned worker);
    void submitAndRun(const std::shared_ptr<Job> &job);

    std::vector<std::thread> threads;
    std::mutex mtx;
    std::condition_variable cv;
    std::condition_variable cvDone;
    std::shared_ptr<Job> current;
    uint64_t generation = 0;
    bool stopping = false;
};

} // namespace vcb

#endif // VCB_COMMON_THREADPOOL_H

/**
 * @file
 * Fixed-size thread pool with a parallel-for helper.
 *
 * The execution engine interprets workgroups of a dispatch in parallel;
 * workgroups are independent (cross-workgroup communication requires a
 * new dispatch in every supported programming model), so a simple
 * chunked parallel-for is sufficient.
 */

#ifndef VCB_COMMON_THREADPOOL_H
#define VCB_COMMON_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vcb {

/** A fixed pool of worker threads executing chunked index ranges. */
class ThreadPool
{
  public:
    /** @param workers Number of worker threads; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run fn(i) for every i in [0, count); blocks until all complete.
     * fn runs concurrently on pool threads and the calling thread.
     * Exceptions escaping fn are fatal (panic) — simulator work items
     * must not throw.
     */
    void parallelFor(uint64_t count,
                     const std::function<void(uint64_t)> &fn);

    /** Number of worker threads (not counting the caller). */
    unsigned workerCount() const { return (unsigned)threads.size(); }

    /** Process-wide shared pool, sized to the hardware. */
    static ThreadPool &global();

  private:
    struct Job
    {
        const std::function<void(uint64_t)> *fn = nullptr;
        std::atomic<uint64_t> next{0};
        uint64_t count = 0;
        uint64_t chunk = 1;
        std::atomic<uint64_t> done{0};
    };

    void workerLoop();
    void runJob(Job &job);

    std::vector<std::thread> threads;
    std::mutex mtx;
    std::condition_variable cv;
    std::condition_variable cvDone;
    Job *current = nullptr;
    uint64_t generation = 0;
    bool stopping = false;
};

} // namespace vcb

#endif // VCB_COMMON_THREADPOOL_H

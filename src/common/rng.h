/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All workload generators in the suite draw from this RNG so that every
 * run (and every API backend within a run) sees bit-identical inputs.
 * The implementation is xoshiro256** which is fast, has a 256-bit state
 * and passes BigCrush; determinism across platforms matters more here
 * than cryptographic quality.
 */

#ifndef VCB_COMMON_RNG_H
#define VCB_COMMON_RNG_H

#include <cstdint>

namespace vcb {

/** Deterministic, seedable RNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) ; bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Uniform float in [lo, hi). */
    float nextFloat(float lo, float hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    uint64_t s[4];
};

} // namespace vcb

#endif // VCB_COMMON_RNG_H

/**
 * @file
 * Quickstart: the paper's Listing-1 vector addition, end to end.
 *
 * Walks the full Vulkan compute path on the simulated GTX 1050 Ti:
 * instance -> physical device enumeration -> queues -> buffers and
 * memory -> shader module -> pipeline -> descriptor sets -> command
 * buffer -> submit -> fence -> readback, with the host-side ceremony
 * the paper discusses (Sec. IV-A and VI-A) visible step by step.
 */

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/mathutil.h"
#include "kernels/kernels.h"
#include "vkm/vkm.h"

using namespace vcb;

int
main()
{
    const uint32_t n = 1u << 20; // one million elements
    std::printf("VComputeBench quickstart: Z[i] = X[i] + Y[i], n=%u\n",
                n);

    // 1. Instance and device discovery.
    vkm::Instance instance;
    vkm::check(vkm::createInstance({"quickstart", true}, &instance),
               "createInstance");
    auto gpus = vkm::enumeratePhysicalDevices(instance);
    std::printf("found %zu Vulkan-capable device(s):\n", gpus.size());
    for (auto pd : gpus) {
        auto props = vkm::getPhysicalDeviceProperties(pd);
        std::printf("  - %s (%s, %s)\n", props.deviceName.c_str(),
                    props.apiVersion.c_str(),
                    props.mobile ? "mobile" : "desktop");
    }
    vkm::PhysicalDevice gpu = gpus.front();

    // 2. Logical device and compute queue.
    vkm::Device device;
    vkm::DeviceCreateInfo dci;
    dci.queueCreateInfos.push_back({0, 1});
    vkm::check(vkm::createDevice(gpu, dci, &device), "createDevice");
    vkm::Queue queue = vkm::getDeviceQueue(device, 0, 0);

    // 3. Buffers: create, query requirements, pick a heap, allocate,
    //    bind (the ~40 lines per buffer the paper contrasts with one
    //    line of cudaMalloc).
    auto props = vkm::getPhysicalDeviceMemoryProperties(gpu);
    auto make_buffer = [&](uint32_t extra_usage) {
        vkm::Buffer buf;
        vkm::BufferCreateInfo bci;
        bci.size = uint64_t(n) * 4;
        bci.usage = vkm::BufferUsageStorage | extra_usage;
        vkm::check(vkm::createBuffer(device, bci, &buf), "createBuffer");
        auto reqs = vkm::getBufferMemoryRequirements(device, buf);
        uint32_t type = vkm::findMemoryType(
            props, reqs.memoryTypeBits,
            vkm::MemoryHostVisible | vkm::MemoryHostCoherent);
        vkm::DeviceMemory mem;
        vkm::check(vkm::allocateMemory(device, {reqs.size, type}, &mem),
                   "allocateMemory");
        vkm::check(vkm::bindBufferMemory(device, buf, mem, 0),
                   "bindBufferMemory");
        return buf;
    };
    vkm::Buffer x = make_buffer(vkm::BufferUsageTransferDst);
    vkm::Buffer y = make_buffer(vkm::BufferUsageTransferDst);
    vkm::Buffer z = make_buffer(vkm::BufferUsageTransferSrc);

    // Fill the inputs through mapped memory.
    auto fill = [&](vkm::Buffer buf, float base) {
        void *ptr = nullptr;
        vkm::check(vkm::mapMemory(device, vkm::bufferMemory(buf), 0,
                                  uint64_t(n) * 4, &ptr),
                   "mapMemory");
        float *f = static_cast<float *>(ptr);
        for (uint32_t i = 0; i < n; ++i)
            f[i] = base + static_cast<float>(i % 1000) * 0.25f;
        vkm::unmapMemory(device, vkm::bufferMemory(buf));
    };
    fill(x, 1.0f);
    fill(y, 2.0f);

    // 4. Shader module from the "offline-compiled" kernel binary.
    spirv::Module module = kernels::buildVecAdd();
    vkm::ShaderModule shader;
    vkm::check(vkm::createShaderModule(device, {module.serialize()},
                                       &shader),
               "createShaderModule");

    // 5. Descriptor set layout, pipeline layout, compute pipeline.
    vkm::DescriptorSetLayout dsl;
    vkm::check(vkm::createDescriptorSetLayout(
                   device, {{{0}, {1}, {2}}}, &dsl),
               "createDescriptorSetLayout");
    vkm::PipelineLayout layout;
    vkm::PipelineLayoutCreateInfo plci;
    plci.setLayouts.push_back(dsl);
    plci.pushConstantRanges.push_back({0, 4});
    vkm::check(vkm::createPipelineLayout(device, plci, &layout),
               "createPipelineLayout");
    vkm::Pipeline pipeline;
    vkm::check(vkm::createComputePipeline(device, {shader, layout},
                                          &pipeline),
               "createComputePipeline");

    // 6. Descriptor set binding the three buffers.
    vkm::DescriptorPool pool;
    vkm::check(vkm::createDescriptorPool(device, {8}, &pool),
               "createDescriptorPool");
    vkm::DescriptorSet set;
    vkm::check(vkm::allocateDescriptorSet(device, pool, dsl, &set),
               "allocateDescriptorSet");
    vkm::updateDescriptorSets(device,
                              {{set, 0, x}, {set, 1, y}, {set, 2, z}});

    // 7. Command buffer: bind, push, dispatch.
    vkm::CommandPool cmd_pool;
    vkm::check(vkm::createCommandPool(device, {0}, &cmd_pool),
               "createCommandPool");
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(device, cmd_pool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, pipeline);
    vkm::cmdBindDescriptorSet(cb, layout, 0, set);
    vkm::cmdPushConstants(cb, layout, 0, 4, &n);
    vkm::cmdDispatch(cb, static_cast<uint32_t>(ceilDiv(n, 256)), 1, 1);
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    // 8. Submit and wait.
    vkm::Fence fence;
    vkm::check(vkm::createFence(device, &fence), "createFence");
    double t0 = vkm::hostNowNs(device);
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(device, {fence}), "waitForFences");
    double t1 = vkm::hostNowNs(device);

    // 9. Read back and verify.
    void *ptr = nullptr;
    vkm::check(vkm::mapMemory(device, vkm::bufferMemory(z), 0,
                              uint64_t(n) * 4, &ptr),
               "mapMemory");
    const float *out = static_cast<const float *>(ptr);
    uint32_t errors = 0;
    for (uint32_t i = 0; i < n; ++i) {
        float expect = 3.0f + static_cast<float>(i % 1000) * 0.5f;
        if (out[i] != expect)
            ++errors;
    }
    vkm::unmapMemory(device, vkm::bufferMemory(z));

    std::printf("kernel region: %.1f us (simulated host clock)\n",
                (t1 - t0) / 1000.0);
    std::printf("verification: %s (%u mismatches)\n",
                errors == 0 ? "PASSED" : "FAILED", errors);
    return errors == 0 ? 0 : 1;
}

/**
 * @file
 * Example: global alignment score of two synthetic DNA sequences via
 * Needleman-Wunsch on the GPU.
 *
 * Builds the similarity matrix from actual A/C/G/T strings, runs the
 * blocked wavefront kernel (one command buffer, one submission) and
 * reports the alignment score, comparing against a CPU DP as a check.
 * Also runs the same workload on the mobile PowerVR device to show
 * cross-platform portability of the identical kernel binary.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "sim/device.h"
#include "suite/vkhelp.h"

using namespace vcb;
using suite::VkContext;
using suite::VkKernel;

namespace {

constexpr int32_t penalty = 6;
constexpr uint32_t n = 512; // sequence length (multiple of 16)

std::string
randomSequence(uint32_t len, uint64_t seed)
{
    static const char bases[] = {'A', 'C', 'G', 'T'};
    Rng rng(seed);
    std::string s;
    for (uint32_t i = 0; i < len; ++i)
        s.push_back(bases[rng.nextBelow(4)]);
    return s;
}

int32_t
alignOn(const sim::DeviceSpec &dev, const std::vector<int32_t> &items,
        const std::vector<int32_t> &ref, double *kernel_us)
{
    const uint32_t nn = n + 1;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err = suite::createVkKernel(ctx, kernels::buildNwBlock(),
                                            &k);
    if (!err.empty())
        fatal("kernel setup failed: %s", err.c_str());

    uint64_t bytes = uint64_t(nn) * nn * 4;
    auto b_items = ctx.createDeviceBuffer(bytes);
    auto b_ref = ctx.createDeviceBuffer(bytes);
    ctx.upload(b_items, items.data(), bytes);
    ctx.upload(b_ref, ref.data(), bytes);
    auto set = suite::makeDescriptorSet(ctx, k, {{0, b_items}, {1, b_ref}});

    uint32_t nb = n / kernels::nwBlockSize;
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
    for (uint32_t s = 0; s < 2 * nb - 1; ++s) {
        uint32_t x_start = s >= nb ? s - nb + 1 : 0;
        uint32_t x_end = std::min(s, nb - 1);
        uint32_t push[4] = {n, s, x_start,
                            static_cast<uint32_t>(penalty)};
        vkm::cmdPushConstants(cb, k.layout, 0, 16, push);
        vkm::cmdDispatch(cb, x_end - x_start + 1, 1, 1);
        vkm::cmdPipelineBarrier(cb);
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
    double t0 = ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    *kernel_us = (ctx.now() - t0) / 1000.0;

    std::vector<int32_t> out(uint64_t(nn) * nn);
    ctx.download(b_items, out.data(), bytes);
    return out[uint64_t(nn) * nn - 1];
}

} // namespace

int
main()
{
    const uint32_t nn = n + 1;
    std::string seq_a = randomSequence(n, 11);
    std::string seq_b = randomSequence(n, 22);
    std::printf("dna_alignment: %u-base global alignment "
                "(match +4, mismatch -2, gap -%d)\n",
                n, penalty);

    // Similarity matrix and border initialisation.
    std::vector<int32_t> ref(uint64_t(nn) * nn, 0);
    std::vector<int32_t> items(uint64_t(nn) * nn, 0);
    for (uint32_t i = 1; i <= n; ++i)
        for (uint32_t j = 1; j <= n; ++j)
            ref[uint64_t(i) * nn + j] =
                seq_a[i - 1] == seq_b[j - 1] ? 4 : -2;
    for (uint32_t i = 1; i <= n; ++i) {
        items[uint64_t(i) * nn] = -static_cast<int32_t>(i) * penalty;
        items[i] = -static_cast<int32_t>(i) * penalty;
    }

    // CPU reference DP.
    std::vector<int32_t> m = items;
    for (uint32_t i = 1; i <= n; ++i)
        for (uint32_t j = 1; j <= n; ++j)
            m[uint64_t(i) * nn + j] = std::max(
                m[uint64_t(i - 1) * nn + j - 1] +
                    ref[uint64_t(i) * nn + j],
                std::max(m[uint64_t(i - 1) * nn + j] - penalty,
                         m[uint64_t(i) * nn + j - 1] - penalty));
    int32_t expect = m[uint64_t(nn) * nn - 1];

    for (const sim::DeviceSpec *dev :
         {&sim::gtx1050ti(), &sim::powervrG6430()}) {
        double us = 0;
        int32_t score = alignOn(*dev, items, ref, &us);
        std::printf("  %-34s score %d (%s, %.1f us kernel region)\n",
                    dev->name.c_str(), score,
                    score == expect ? "matches CPU" : "MISMATCH", us);
    }
    std::printf("CPU reference score: %d\n", expect);
    return 0;
}

/**
 * @file
 * Example: steady-state thermal estimation of a CPU floorplan.
 *
 * Builds a synthetic power map with four hot cores and a cooler
 * uncore, runs the hotspot stencil until the temperature field
 * settles, and prints a character heat map.  Demonstrates the
 * single-command-buffer + barrier pattern (all iterations recorded
 * once, one submission) and descriptor-set ping-pong.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "kernels/kernels.h"
#include "sim/device.h"
#include "suite/vkhelp.h"

using namespace vcb;
using suite::VkContext;
using suite::VkKernel;

int
main()
{
    const uint32_t g = 128; // die grid (multiple of the 16x16 tile)
    const uint32_t steps = 96;
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    std::printf("thermal_floorplan: %ux%u die, %u steps on %s\n", g, g,
                steps, dev.name.c_str());

    // Synthetic floorplan: four core hotspots + background power.
    std::vector<float> power(uint64_t(g) * g, 0.1f);
    auto stamp_core = [&](uint32_t cr, uint32_t cc) {
        for (uint32_t r = cr; r < cr + g / 4; ++r)
            for (uint32_t c = cc; c < cc + g / 4; ++c)
                power[uint64_t(r) * g + c] = 2.4f;
    };
    stamp_core(g / 8, g / 8);
    stamp_core(g / 8, g - g / 8 - g / 4);
    stamp_core(g - g / 8 - g / 4, g / 8);
    stamp_core(g - g / 8 - g / 4, g - g / 8 - g / 4);
    std::vector<float> temp(uint64_t(g) * g, 45.0f);

    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err =
        suite::createVkKernel(ctx, kernels::buildHotspotStep(), &k);
    if (!err.empty())
        fatal("kernel setup failed: %s", err.c_str());

    uint64_t bytes = uint64_t(g) * g * 4;
    auto b_a = ctx.createDeviceBuffer(bytes);
    auto b_b = ctx.createDeviceBuffer(bytes);
    auto b_p = ctx.createDeviceBuffer(bytes);
    ctx.upload(b_a, temp.data(), bytes);
    ctx.upload(b_p, power.data(), bytes);

    auto s_ab = suite::makeDescriptorSet(ctx, k,
                                         {{0, b_a}, {1, b_p}, {2, b_b}});
    auto s_ba = suite::makeDescriptorSet(ctx, k,
                                         {{0, b_b}, {1, b_p}, {2, b_a}});

    float cc = 0.08f, rx_inv = 0.35f, ry_inv = 0.35f, rz_inv = 0.08f,
          amb = 45.0f;
    uint32_t push[6] = {g, 0, 0, 0, 0, 0};
    std::memcpy(&push[1], &cc, 4);
    std::memcpy(&push[2], &rx_inv, 4);
    std::memcpy(&push[3], &ry_inv, 4);
    std::memcpy(&push[4], &rz_inv, 4);
    std::memcpy(&push[5], &amb, 4);

    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdPushConstants(cb, k.layout, 0, 24, push);
    for (uint32_t s = 0; s < steps; ++s) {
        vkm::cmdBindDescriptorSet(cb, k.layout, 0,
                                  (s % 2 == 0) ? s_ab : s_ba);
        vkm::cmdDispatch(cb, g / 16, g / 16, 1);
        vkm::cmdPipelineBarrier(cb);
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
    double t0 = ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {fence}), "waitForFences");
    double t1 = ctx.now();

    std::vector<float> out(uint64_t(g) * g);
    ctx.download((steps % 2 == 0) ? b_a : b_b, out.data(), bytes);

    float t_min = out[0], t_max = out[0];
    for (float t : out) {
        t_min = std::fmin(t_min, t);
        t_max = std::fmax(t_max, t);
    }
    std::printf("simulated %u steps in %.1f us (one submission)\n",
                steps, (t1 - t0) / 1000.0);
    std::printf("temperature range: %.1f C .. %.1f C\n", t_min, t_max);

    // Down-sampled character heat map.
    static const char shades[] = " .:-=+*#%@";
    const uint32_t cell = g / 32;
    for (uint32_t r = 0; r < g; r += cell) {
        std::string line = "  ";
        for (uint32_t c = 0; c < g; c += cell) {
            float acc = 0;
            for (uint32_t rr = 0; rr < cell; ++rr)
                for (uint32_t cc2 = 0; cc2 < cell; ++cc2)
                    acc += out[uint64_t(r + rr) * g + c + cc2];
            acc /= static_cast<float>(cell) * cell;
            int idx = static_cast<int>((acc - t_min) /
                                       (t_max - t_min + 1e-6f) * 9.0f);
            line += shades[idx];
        }
        std::printf("%s\n", line.c_str());
    }
    return 0;
}

/**
 * @file
 * Example: hop-distance analysis of a synthetic social graph.
 *
 * Uses the Vulkan-mini API with the suite's bfs kernels to compute
 * how many hops separate every member from a seed user, then prints a
 * reachability histogram.  Demonstrates the level-synchronous pattern
 * where the host must read a flag back between submissions (mapped
 * host-visible memory + fence per level).
 */

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "sim/device.h"
#include "suite/vkhelp.h"

using namespace vcb;
using suite::VkContext;
using suite::VkKernel;

int
main()
{
    const uint32_t members = 100000;
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    std::printf("graph_search: %u-member social graph on %s\n", members,
                dev.name.c_str());

    // Synthetic small-world-ish graph: a few random follows per user.
    Rng rng(2026);
    std::vector<int32_t> start(members), degree(members), edges;
    for (uint32_t i = 0; i < members; ++i) {
        start[i] = static_cast<int32_t>(edges.size());
        uint32_t deg = 3 + static_cast<uint32_t>(rng.nextBelow(5));
        degree[i] = static_cast<int32_t>(deg);
        for (uint32_t e = 0; e < deg; ++e)
            edges.push_back(static_cast<int32_t>(rng.nextBelow(members)));
    }

    VkContext ctx = VkContext::create(dev);
    VkKernel k1, k2;
    std::string err =
        suite::createVkKernel(ctx, kernels::buildBfsKernel1(), &k1);
    if (err.empty())
        err = suite::createVkKernel(ctx, kernels::buildBfsKernel2(), &k2);
    if (!err.empty())
        fatal("kernel setup failed: %s", err.c_str());

    uint64_t nbytes = uint64_t(members) * 4;
    auto b_start = ctx.createDeviceBuffer(nbytes);
    auto b_deg = ctx.createDeviceBuffer(nbytes);
    auto b_edges = ctx.createDeviceBuffer(edges.size() * 4);
    auto b_mask = ctx.createDeviceBuffer(nbytes);
    auto b_umask = ctx.createDeviceBuffer(nbytes);
    auto b_visited = ctx.createDeviceBuffer(nbytes);
    auto b_cost = ctx.createDeviceBuffer(nbytes);
    auto b_stop = ctx.createHostBuffer(4);

    std::vector<int32_t> mask(members, 0), zero(members, 0),
        cost(members, -1);
    mask[0] = 1;
    std::vector<int32_t> visited = mask;
    cost[0] = 0;
    ctx.upload(b_start, start.data(), nbytes);
    ctx.upload(b_deg, degree.data(), nbytes);
    ctx.upload(b_edges, edges.data(), edges.size() * 4);
    ctx.upload(b_mask, mask.data(), nbytes);
    ctx.upload(b_umask, zero.data(), nbytes);
    ctx.upload(b_visited, visited.data(), nbytes);
    ctx.upload(b_cost, cost.data(), nbytes);

    auto s1 = suite::makeDescriptorSet(ctx, k1,
                                       {{0, b_start},
                                        {1, b_deg},
                                        {2, b_edges},
                                        {3, b_mask},
                                        {4, b_umask},
                                        {5, b_visited},
                                        {6, b_cost}});
    auto s2 = suite::makeDescriptorSet(
        ctx, k2,
        {{0, b_mask}, {1, b_umask}, {2, b_visited}, {3, b_stop}});

    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    uint32_t groups = static_cast<uint32_t>(ceilDiv(members, 256));
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k1.pipeline);
    vkm::cmdBindDescriptorSet(cb, k1.layout, 0, s1);
    vkm::cmdPushConstants(cb, k1.layout, 0, 4, &members);
    vkm::cmdDispatch(cb, groups, 1, 1);
    vkm::cmdPipelineBarrier(cb);
    vkm::cmdBindPipeline(cb, k2.pipeline);
    vkm::cmdBindDescriptorSet(cb, k2.layout, 0, s2);
    vkm::cmdPushConstants(cb, k2.layout, 0, 4, &members);
    vkm::cmdDispatch(cb, groups, 1, 1);
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
    uint32_t *stop = ctx.map(b_stop);

    double t0 = ctx.now();
    uint32_t levels = 0;
    for (;;) {
        *stop = 0;
        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
        vkm::check(vkm::resetFences(ctx.device, {fence}), "resetFences");
        ++levels;
        if (*stop == 0)
            break;
    }
    double t1 = ctx.now();

    ctx.download(b_cost, cost.data(), nbytes);

    // Histogram of hop distances.
    std::vector<uint32_t> histo;
    uint32_t unreachable = 0;
    for (int32_t c : cost) {
        if (c < 0) {
            ++unreachable;
            continue;
        }
        if (static_cast<size_t>(c) >= histo.size())
            histo.resize(c + 1, 0);
        ++histo[c];
    }
    std::printf("traversal: %u levels, %.1f us simulated kernel region\n",
                levels, (t1 - t0) / 1000.0);
    for (size_t h = 0; h < histo.size(); ++h)
        std::printf("  %2zu hops: %7u members\n", h, histo[h]);
    std::printf("  unreachable: %u\n", unreachable);
    return 0;
}

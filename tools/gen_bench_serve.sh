#!/bin/sh
# gen_bench_serve.sh — regenerates BENCH_serve.json, the committed
# serve-layer snapshot: vcb_load's compile-cache ablation (the same
# seeded request mix served with the cache off, cold and warm) plus
# its gate summary (cross-phase hash identity, warm hit rate, p50
# latency speedup).
#
# Like BENCH_perf.json this is wall-clock derived, so it is never
# diffed byte-for-byte; it records the serve layer's latency
# trajectory on the reference machine.  The functional claims it
# witnesses (hash_match, warm hit rate > 0.9) are enforced every CI
# run by the smoke_vcb_load_spawned ctest entry.
#
# Usage: tools/gen_bench_serve.sh [vcb_load-binary] > BENCH_serve.json
# (default binary: <repo>/build/vcb_load; requests: VCB_LOAD_REQUESTS
# or 120)

set -eu
root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
bin=${1:-"$root/build/vcb_load"}
requests=${VCB_LOAD_REQUESTS:-120}

if [ ! -x "$bin" ]; then
    echo "gen_bench_serve: $bin not built" >&2
    exit 1
fi

out=$(VCB_THREADS=4 "$bin" --requests "$requests" --clients 4 \
          --sessions 4 --seed 42 2>/dev/null)

phase() { printf '%s\n' "$out" | grep "\"phase\": \"$1\""; }

cat <<EOF
{
  "comment": "serve-layer compile-cache ablation; regenerate with tools/gen_bench_serve.sh > BENCH_serve.json",
  "requests": $requests,
  "cache_off": $(phase cache_off),
  "cache_cold": $(phase cache_cold),
  "cache_warm": $(phase cache_warm),
  "summary": $(printf '%s\n' "$out" | grep '"phase": "summary"')
}
EOF

#!/bin/sh
# check_docs.sh — markdown link check + light lint for the repo docs.
#
# Checks every markdown file in the repo root and docs/:
#   1. every relative link target [text](path) exists (anchors and
#      external http(s)/mailto links are skipped);
#   2. no file references DESIGN.md/EXPERIMENTS.md-style ghosts: any
#      `something.md` mentioned in a markdown file must exist;
#   3. lint: no trailing whitespace, no hard tabs;
#   4. the generated results book (docs/RESULTS.md) matches a fresh
#      `vcb_report --dry-run` regeneration — only when a built binary
#      is visible (VCB_REPORT_BIN, or build/tools/vcb_report under the
#      repo root); skipped with a note otherwise, so the pre-build CI
#      docs step still works.
#
# Usage: tools/check_docs.sh [repo-root]   (defaults to the script's
# parent directory).  Exit 0 = clean; every finding is printed.

set -u
root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root" || exit 2

fail=0
note() {
    echo "check_docs: $1"
    fail=1
}

files=$(ls ./*.md docs/*.md 2>/dev/null)
[ -n "$files" ] || { echo "check_docs: no markdown files found"; exit 2; }

for f in $files; do
    dir=$(dirname "$f")

    # 1. Relative markdown links must resolve.
    # Extract every (...) target of a [..](..) link, one per line.
    grep -o '\[[^]]*\]([^)]*)' "$f" 2>/dev/null |
        sed 's/.*(\([^)]*\))/\1/' |
        while IFS= read -r target; do
            case "$target" in
              http://*|https://*|mailto:*|\#*) continue ;;
            esac
            path=${target%%#*}
            [ -n "$path" ] || continue
            if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
                echo "BROKEN $f -> $target"
            fi
        done > /tmp/check_docs_links.$$ 2>/dev/null
    if [ -s /tmp/check_docs_links.$$ ]; then
        cat /tmp/check_docs_links.$$
        fail=1
    fi
    rm -f /tmp/check_docs_links.$$

    # 3. Lint: trailing whitespace and hard tabs, outside fenced code
    # blocks (quoted code keeps its own whitespace).
    lint=$(awk '
        /^```/ { fence = !fence; next }
        fence { next }
        /[ \t]$/ { printf "%d(trailing-ws) ", NR }
        /\t/ { printf "%d(tab) ", NR }
    ' "$f")
    if [ -n "$lint" ]; then
        note "$f: lint: $lint"
    fi
done

# 2. Ghost-document check: every FOO.md mentioned in the *living*
# documentation (README + docs/) must exist in the repo.  Historical
# records (CHANGES.md, ISSUE.md, ...) are exempt — a changelog may
# legitimately name documents that were removed.  The token must be a
# clean path shape (word-character segments, non-empty stem), so prose
# fragments don't false-positive.
living=$(ls README.md docs/*.md 2>/dev/null)
for name in $(grep -hoE '([A-Za-z0-9_-]+/)*[A-Za-z0-9_-]+\.md' $living | sort -u); do
    base=$(basename "$name")
    if [ ! -e "$name" ] && [ ! -e "docs/$base" ] && [ ! -e "$base" ]; then
        note "dangling document reference: $name"
    fi
done

# 4. Generated-results-book drift: regenerate the book at dry-run
# scale and demand byte equality with the committed docs/RESULTS.md.
report_bin=${VCB_REPORT_BIN:-"$root/build/tools/vcb_report"}
if [ -x "$report_bin" ] && [ -e "$root/docs/RESULTS.md" ]; then
    if ! "$report_bin" --dry-run --devices "$root/devices" \
            --check "$root/docs/RESULTS.md" >/dev/null 2>&1; then
        note "docs/RESULTS.md drifts from 'vcb_report --dry-run' (regenerate: build/tools/vcb_report --dry-run > docs/RESULTS.md)"
    fi
else
    echo "check_docs: vcb_report not built; skipping RESULTS.md drift check"
fi

if [ "$fail" -eq 0 ]; then
    echo "check_docs: OK ($(echo "$files" | wc -w | tr -d ' ') files)"
fi
exit "$fail"

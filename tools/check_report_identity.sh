#!/bin/sh
# check_report_identity.sh — verifies the report pipeline's no-drift
# guarantee: the fig1–fig4 and tab1/tab23 sections embedded in the
# committed docs/RESULTS.md are byte-identical to what the standalone
# bench/ binaries print for the same device specs (both sides are the
# same report_book renderer; this catches anyone breaking that).
#
# Usage: tools/check_report_identity.sh [repo-root] [build-dir]
# (defaults: script's parent directory, <root>/build)

set -u
root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
build=${2:-"$root/build"}

fail=0

# extract <heading-prefix>: the first fenced block after the heading.
extract() {
    awk -v h="$1" '
        index($0, h) == 1 { want = 1 }
        want && $0 == "```" { if (infence) exit; infence = 1; next }
        infence { print }
    ' "$root/docs/RESULTS.md"
}

check() { # heading-prefix label command...
    heading=$1; label=$2; shift 2
    if [ ! -x "$1" ]; then
        echo "check_report_identity: $1 not built; skipping $label"
        return
    fi
    got=$("$@" 2>/dev/null)
    want=$(extract "$heading")
    if [ -z "$want" ]; then
        echo "MISSING: no '$heading' section in docs/RESULTS.md"
        fail=1
    elif [ "$got" != "$want" ]; then
        echo "MISMATCH: $label output differs from the committed book section"
        fail=1
    else
        echo "check_report_identity: $label identical to book"
    fi
}

devs="$root/devices"
check "## Figure 1" fig1 "$build/fig1_bandwidth_desktop" --dry-run --devices "$devs"
check "## Figure 2" fig2 "$build/fig2_speedup_desktop" --dry-run --devices "$devs"
check "## Figure 3" fig3 "$build/fig3_bandwidth_mobile" --dry-run --devices "$devs"
check "## Figure 4" fig4 "$build/fig4_speedup_mobile" --dry-run --devices "$devs"
check "## Table I " tab1 "$build/tab1_benchmarks"
check "## Tables II" tab23 "$build/tab23_platforms" --devices "$devs"
check "## Oversubscribed" oversub "$build/fig_oversub_bandwidth" --dry-run --devices "$devs"

exit "$fail"

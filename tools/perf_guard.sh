#!/bin/sh
# perf_guard.sh — interpreter-throughput regression gate (ctest entry
# "perf_guard").  Runs the quick reference mix single-threaded,
# median-of-3, and fails when workgroups/s drops more than
# VCB_PERF_TOLERANCE (default 0.25 = 25%) below the committed
# BENCH_perf.json quick/threads1 snapshot.
#
# The gate is RELATIVE on purpose: absolute wg/s varies across hosts,
# but a hot-path regression shows up as a large relative drop even on
# a noisy machine.  Set VCB_PERF_TOLERANCE to loosen on known-slow or
# shared runners, or VCB_PERF_GUARD=off to skip entirely.
#
# Usage: tools/perf_guard.sh [repo-root] [vcb_perf-binary]

set -u
root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
bin=${2:-"$root/build/vcb_perf"}
tol=${VCB_PERF_TOLERANCE:-0.25}

if [ "${VCB_PERF_GUARD:-on}" = "off" ]; then
    echo "perf_guard: disabled via VCB_PERF_GUARD=off"
    exit 0
fi
if [ ! -x "$bin" ]; then
    echo "perf_guard: $bin not built" >&2
    exit 1
fi
if [ ! -f "$root/BENCH_perf.json" ]; then
    echo "perf_guard: no committed BENCH_perf.json" >&2
    exit 1
fi

ref=$(jq -r '.quick.threads1.workgroups_per_s' "$root/BENCH_perf.json" \
    2>/dev/null)
if [ -z "$ref" ] || [ "$ref" = "null" ]; then
    echo "perf_guard: BENCH_perf.json has no quick/threads1 snapshot" >&2
    exit 1
fi

floor=$(awk -v r="$ref" -v t="$tol" 'BEGIN { printf "%d", r * (1 - t) }')

# A real regression reproduces; a noisy-neighbour era mostly does not.
# One retry halves the false-failure rate without hiding true drops.
attempt=1
while :; do
    got=$(VCB_THREADS=1 "$bin" --quick --repeat 3 2>/dev/null |
        grep '"bench": "mix"' | jq -r '.workgroups_per_s')
    if [ -z "$got" ] || [ "$got" = "null" ]; then
        echo "perf_guard: vcb_perf produced no mix line" >&2
        exit 1
    fi
    echo "perf_guard: quick mix $got wg/s (committed $ref," \
         "floor $floor, tolerance $tol, attempt $attempt)"
    if [ "$got" -ge "$floor" ]; then
        echo "perf_guard: OK"
        exit 0
    fi
    if [ "$attempt" -ge 2 ]; then
        break
    fi
    attempt=$((attempt + 1))
done
echo "perf_guard: FAIL — throughput dropped more than" \
     "$(awk -v t="$tol" 'BEGIN { printf "%d%%", t * 100 }')" \
     "below the committed snapshot on both attempts; investigate or" \
     "regenerate BENCH_perf.json (tools/gen_bench_perf.sh) if intentional"
exit 1

/**
 * @file
 * vcb_load — request-stream load generator and compile-cache ablation.
 *
 * Replays a seeded deterministic mix of benchmark-run requests
 * against the serve layer and measures it three times:
 *
 *   cache_off   compile cache disabled (every request re-lowers),
 *   cache_cold  cache enabled from empty (first sight of each
 *               kernel x device x API misses, repeats hit),
 *   cache_warm  the same mix again over the populated cache.
 *
 * Each phase reports client-observed latency percentiles, throughput
 * and the phase's compile-cache hit/miss delta as one flat JSON line;
 * a final summary line carries the cross-phase verdicts.  The process
 * exits non-zero unless (a) every request's result hash is
 * bit-identical across all three phases — the cache must be
 * observably invisible — (b) the warm-phase hit rate exceeds 0.9, and
 * (c) thread-CPU time inside compileKernel drops from the off phase
 * to the warm phase (the cache's actual latency win, measured in CPU
 * time so a saturated machine cannot drown it in preemption noise).
 * tools/gen_bench_serve.sh snapshots the output as BENCH_serve.json;
 * CI runs it as a gate.
 *
 *   vcb_load [--requests N] [--clients C] [--sessions S] [--seed K]
 *            [--rate R] [--quick] [--devices DIR] [--serve-bin PATH]
 *            [--no-gate]
 *
 * By default the mix runs in-process on the sweep executor
 * (src/harness/sweep.h): min(--clients, --sessions) worker sessions,
 * each with a private ScopedDeviceRegistry, execute requests directly
 * through serve::executeRequest — the closed loop IS the executor's
 * dynamic work queue.  --serve-bin spawns the given vcb_serve binary
 * and drives it over its stdin/stdout pipe protocol instead — the
 * same mix, phases and gates, end to end through the wire format.
 * --rate R switches from the closed loop (each worker/client waiting
 * for its response) to an open loop issuing R requests/second
 * regardless of completions; in-process, open-loop latency is
 * measured from each request's SCHEDULED issue slot, so worker
 * lateness counts as queueing delay (no coordinated omission).
 *
 * Every phase line's rate_rps field reports the ACTUALLY ACHIEVED
 * offered rate (inter-issue rate over the phase), not the configured
 * target: in the closed loop it tracks throughput by construction, in
 * the open loop it converges on --rate R when issuance keeps up.
 */

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/strutil.h"
#include "harness/sweep.h"
#include "serve/metrics.h"
#include "serve/serve.h"
#include "sim/compile_cache.h"
#include "sim/device_file.h"

using namespace vcb;

namespace {

void
usage()
{
    std::printf(
        "usage: vcb_load [--requests N] [--clients C] [--sessions S]\n"
        "                [--seed K] [--rate R] [--quick]\n"
        "                [--devices DIR] [--serve-bin PATH] "
        "[--no-gate]\n");
}

// ---------------------------------------------------------------------------
// Deterministic request mix
// ---------------------------------------------------------------------------

struct Combo
{
    const char *bench;
    const char *api;
    const char *device;
    const char *strategy;
};

/** Size-0 combos over the two desktop parts; every entry runs ok, so
 *  the cross-phase hash-identity check covers the full mix. */
const Combo kCombos[] = {
    {"bfs", "vulkan", "gtx1050ti", ""},
    {"bfs", "opencl", "gtx1050ti", ""},
    {"bfs", "cuda", "gtx1050ti", ""},
    {"pathfinder", "vulkan", "gtx1050ti", "batched"},
    {"pathfinder", "opencl", "gtx1050ti", ""},
    {"hotspot", "cuda", "gtx1050ti", ""},
    {"hotspot", "vulkan", "rx560", ""},
    {"nw", "vulkan", "rx560", "re-record"},
    {"nw", "opencl", "rx560", ""},
    {"lud", "vulkan", "gtx1050ti", ""},
    {"gaussian", "opencl", "rx560", ""},
    {"gaussian", "cuda", "gtx1050ti", ""},
};

uint64_t
xorshift64(uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

std::vector<serve::Request>
buildMix(size_t n, uint64_t seed)
{
    uint64_t state = seed ? seed : 1;
    std::vector<serve::Request> mix;
    mix.reserve(n);
    constexpr size_t combos = sizeof(kCombos) / sizeof(kCombos[0]);
    for (size_t i = 0; i < n; ++i) {
        const Combo &c = kCombos[xorshift64(state) % combos];
        serve::Request r;
        r.bench = c.bench;
        r.api = c.api;
        r.device = c.device;
        r.strategy = c.strategy;
        mix.push_back(r);
    }
    return mix;
}

// ---------------------------------------------------------------------------
// Clients: in-process broker, or a spawned vcb_serve over pipes
// ---------------------------------------------------------------------------

struct ResultRec
{
    bool ok = false;
    bool validated = false;
    std::string error;
    uint64_t hash = 0;
    /** Client-observed latency (queueing + service), ns. */
    double clientNs = 0;
};

class Client
{
  public:
    virtual ~Client() = default;
    virtual void send(const serve::Request &req,
                      std::function<void(const ResultRec &)> done) = 0;
    virtual void cacheEnable(bool on) = 0;
    virtual void cacheClear() = 0;
    virtual void cacheCounts(uint64_t *hits, uint64_t *misses,
                             uint64_t *compile_calls,
                             uint64_t *compile_cpu_ns) = 0;
    /** Block until every sent request has been answered. */
    virtual void drain() = 0;
};

/** In-process cache controls: the phases run in this process, so the
 *  knobs are direct CompileCache calls (the pipe path asks the spawned
 *  server instead). */
void
inProcCacheCounts(uint64_t *hits, uint64_t *misses,
                  uint64_t *compile_calls, uint64_t *compile_cpu_ns)
{
    sim::CompileCacheStats s = sim::CompileCache::global().stats();
    *hits = s.hits;
    *misses = s.misses;
    *compile_calls = s.compileCalls;
    *compile_cpu_ns = s.compileCpuNs;
}

/** Drives a spawned vcb_serve through its stdin/stdout NDJSON pipe. */
class PipeClient : public Client
{
  public:
    PipeClient(const std::string &bin, unsigned sessions,
               const std::string &devices_dir)
    {
        int to_child[2], from_child[2];
        if (pipe(to_child) != 0 || pipe(from_child) != 0)
            fatal("pipe: %s", std::strerror(errno));
        pid = fork();
        if (pid < 0)
            fatal("fork: %s", std::strerror(errno));
        if (pid == 0) {
            dup2(to_child[0], STDIN_FILENO);
            dup2(from_child[1], STDOUT_FILENO);
            close(to_child[0]);
            close(to_child[1]);
            close(from_child[0]);
            close(from_child[1]);
            std::string sess = strprintf("%u", sessions);
            if (devices_dir.empty())
                execl(bin.c_str(), bin.c_str(), "--sessions",
                      sess.c_str(), (char *)nullptr);
            else
                execl(bin.c_str(), bin.c_str(), "--sessions",
                      sess.c_str(), "--devices", devices_dir.c_str(),
                      (char *)nullptr);
            std::fprintf(stderr, "exec %s: %s\n", bin.c_str(),
                         std::strerror(errno));
            _exit(127);
        }
        close(to_child[0]);
        close(from_child[1]);
        in = fdopen(to_child[1], "w");
        out = fdopen(from_child[0], "r");
        if (!in || !out)
            fatal("fdopen failed");
        reader = std::thread([this] { readerLoop(); });
    }

    ~PipeClient() override
    {
        control("shutdown");
        {
            std::lock_guard<std::mutex> lk(mtx);
            std::fclose(in);
            in = nullptr;
        }
        if (reader.joinable())
            reader.join();
        std::fclose(out);
        int status = 0;
        waitpid(pid, &status, 0);
    }

    void send(const serve::Request &req,
              std::function<void(const ResultRec &)> done) override
    {
        std::string id = nextId();
        auto t0 = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lk(mtx);
            pending[id] = [t0, done = std::move(done)](
                              const serve::JsonObject &obj) {
                ResultRec rec;
                rec.ok = boolField(obj, "ok");
                rec.validated = boolField(obj, "validated");
                rec.error = strField(obj, "error");
                rec.hash = std::strtoull(
                    strField(obj, "result_hash").c_str(), nullptr, 16);
                rec.clientNs =
                    std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                done(rec);
            };
            writeLine(strprintf(
                "{\"id\": \"%s\", \"bench\": \"%s\", \"api\": \"%s\", "
                "\"device\": \"%s\"%s}",
                id.c_str(), req.bench.c_str(), req.api.c_str(),
                req.device.c_str(),
                req.strategy.empty()
                    ? ""
                    : strprintf(", \"strategy\": \"%s\"",
                                req.strategy.c_str())
                          .c_str()));
        }
    }

    void cacheEnable(bool on) override
    {
        controlExtra("cache", strprintf(", \"enabled\": %s",
                                        on ? "true" : "false"));
    }
    void cacheClear() override { control("cache_clear"); }
    void cacheCounts(uint64_t *hits, uint64_t *misses,
                     uint64_t *compile_calls,
                     uint64_t *compile_cpu_ns) override
    {
        serve::JsonObject obj = control("stats");
        *hits = (uint64_t)numField(obj, "cache_hits");
        *misses = (uint64_t)numField(obj, "cache_misses");
        *compile_calls = (uint64_t)numField(obj, "compile_calls");
        *compile_cpu_ns = (uint64_t)numField(obj, "compile_cpu_ns");
    }

    void drain() override { control("drain"); }

  private:
    static const serve::JsonField *
    field(const serve::JsonObject &obj, const char *key)
    {
        for (const auto &kv : obj)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
    static bool boolField(const serve::JsonObject &obj, const char *k)
    {
        const serve::JsonField *f = field(obj, k);
        return f && f->kind == serve::JsonField::Kind::Bool && f->b;
    }
    static std::string strField(const serve::JsonObject &obj,
                                const char *k)
    {
        const serve::JsonField *f = field(obj, k);
        return f && f->kind == serve::JsonField::Kind::String ? f->str
                                                              : "";
    }
    static double numField(const serve::JsonObject &obj, const char *k)
    {
        const serve::JsonField *f = field(obj, k);
        return f && f->kind == serve::JsonField::Kind::Number ? f->num
                                                              : 0;
    }

    std::string nextId()
    {
        return strprintf("q%llu",
                         (unsigned long long)seq.fetch_add(1));
    }

    /** Caller holds mtx. */
    void writeLine(const std::string &line)
    {
        VCB_ASSERT(in, "serve pipe already closed");
        std::fprintf(in, "%s\n", line.c_str());
        std::fflush(in);
    }

    /** Send a control command and block for its response object. */
    serve::JsonObject controlExtra(const char *cmd,
                                   const std::string &extra)
    {
        std::string id = nextId();
        serve::JsonObject result;
        bool got = false;
        std::condition_variable cv;
        {
            std::unique_lock<std::mutex> lk(mtx);
            if (dead)
                return result; // server already gone; don't hang
            // The callback runs on the reader thread with mtx NOT
            // held; it must take it before touching the locals this
            // wait reads.
            pending[id] = [&](const serve::JsonObject &obj) {
                {
                    std::lock_guard<std::mutex> cb_lk(mtx);
                    result = obj;
                    got = true;
                }
                cv.notify_all();
            };
            writeLine(strprintf("{\"cmd\": \"%s\", \"id\": \"%s\"%s}",
                                cmd, id.c_str(), extra.c_str()));
            cv.wait(lk, [&] { return got; });
        }
        return result;
    }
    serve::JsonObject control(const char *cmd)
    {
        return controlExtra(cmd, "");
    }

    void readerLoop()
    {
        char *buf = nullptr;
        size_t cap = 0;
        ssize_t len;
        while ((len = getline(&buf, &cap, out)) > 0) {
            std::string line(buf, (size_t)len);
            while (!line.empty() &&
                   (line.back() == '\n' || line.back() == '\r'))
                line.pop_back();
            if (line.empty())
                continue;
            serve::JsonObject obj;
            std::string err;
            if (!serve::parseFlatObject(line, &obj, &err)) {
                warn("unparseable response '%s': %s", line.c_str(),
                     err.c_str());
                continue;
            }
            std::string id = strField(obj, "id");
            std::function<void(const serve::JsonObject &)> cb;
            {
                std::lock_guard<std::mutex> lk(mtx);
                auto it = pending.find(id);
                if (it != pending.end()) {
                    cb = std::move(it->second);
                    pending.erase(it);
                }
            }
            if (cb)
                cb(obj);
            else
                warn("response for unknown id '%s'", id.c_str());
        }
        free(buf);
        // EOF: fail every outstanding request so no waiter hangs.
        serve::JsonObject died;
        {
            serve::JsonField f;
            f.kind = serve::JsonField::Kind::String;
            f.str = "vcb_serve exited";
            died.emplace_back("error", f);
        }
        std::vector<std::function<void(const serve::JsonObject &)>>
            orphans;
        {
            std::lock_guard<std::mutex> lk(mtx);
            dead = true;
            for (auto &kv : pending) {
                warn("no response for request '%s'", kv.first.c_str());
                orphans.push_back(std::move(kv.second));
            }
            pending.clear();
        }
        for (auto &cb : orphans)
            cb(died);
    }

    pid_t pid = -1;
    FILE *in = nullptr;
    FILE *out = nullptr;
    std::thread reader;
    std::atomic<uint64_t> seq{0};
    std::mutex mtx;
    bool dead = false;
    std::map<std::string,
             std::function<void(const serve::JsonObject &)>>
        pending;
};

// ---------------------------------------------------------------------------
// Phase driver
// ---------------------------------------------------------------------------

struct PhaseOutcome
{
    std::string name;
    uint64_t okCount = 0;
    uint64_t errCount = 0;
    double wallSec = 0;
    serve::LatencyRecorder::Snapshot lat;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t compileCalls = 0;
    uint64_t compileCpuNs = 0;
    /** Actually achieved offered rate: inter-issue rate over the
     *  phase ((n-1) / issue window), falling back to count/wall when
     *  fewer than two requests were issued. */
    double offeredRps = 0;
    std::vector<uint64_t> hashes; ///< per mix index; 0 = failed

    double hitRate() const
    {
        uint64_t total = hits + misses;
        return total ? (double)hits / (double)total : 0.0;
    }
};

PhaseOutcome
runPhase(Client &client, const std::string &name,
         const std::vector<serve::Request> &mix, unsigned clients,
         double rate_rps)
{
    PhaseOutcome out;
    out.name = name;
    out.hashes.assign(mix.size(), 0);

    uint64_t h0, m0, cc0, cw0;
    client.cacheCounts(&h0, &m0, &cc0, &cw0);

    serve::LatencyRecorder recorder;
    std::mutex rec_mtx;
    auto record = [&](size_t idx, const ResultRec &rec) {
        recorder.record(rec.clientNs);
        std::lock_guard<std::mutex> lk(rec_mtx);
        if (rec.ok && rec.validated) {
            ++out.okCount;
            out.hashes[idx] = rec.hash;
        } else {
            ++out.errCount;
            warn("%s: request %zu failed: %s", name.c_str(), idx,
                 rec.error.c_str());
        }
    };

    // Actual issue instants bound the phase's achieved offered rate.
    std::mutex issue_mtx;
    std::chrono::steady_clock::time_point first_issue, last_issue;
    size_t issue_count = 0;
    auto noteIssue = [&] {
        auto now = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> lk(issue_mtx);
        if (issue_count == 0)
            first_issue = now;
        last_issue = now;
        ++issue_count;
    };

    auto t0 = std::chrono::steady_clock::now();
    if (rate_rps > 0) {
        // Open loop: issue at the configured rate, irrespective of
        // completions.
        std::chrono::duration<double> interval(1.0 / rate_rps);
        auto next = t0;
        for (size_t i = 0; i < mix.size(); ++i) {
            std::this_thread::sleep_until(next);
            next += std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(interval);
            noteIssue();
            client.send(mix[i], [&record, i](const ResultRec &rec) {
                record(i, rec);
            });
        }
        client.drain();
    } else {
        // Closed loop: `clients` concurrent requesters, each waiting
        // for its response before taking the next mix entry.
        std::atomic<size_t> cursor{0};
        auto worker = [&] {
            for (;;) {
                size_t i = cursor.fetch_add(1);
                if (i >= mix.size())
                    return;
                std::mutex m;
                std::condition_variable cv;
                bool done = false;
                noteIssue();
                client.send(mix[i], [&](const ResultRec &rec) {
                    record(i, rec);
                    std::lock_guard<std::mutex> lk(m);
                    done = true;
                    cv.notify_all();
                });
                std::unique_lock<std::mutex> lk(m);
                cv.wait(lk, [&] { return done; });
            }
        };
        std::vector<std::thread> threads;
        for (unsigned c = 0; c < clients; ++c)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
        client.drain();
    }
    out.wallSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    double issue_window =
        std::chrono::duration<double>(last_issue - first_issue)
            .count();
    out.offeredRps =
        issue_count > 1 && issue_window > 0
            ? (double)(issue_count - 1) / issue_window
            : (out.wallSec > 0 ? (double)issue_count / out.wallSec
                               : 0);

    uint64_t h1, m1, cc1, cw1;
    client.cacheCounts(&h1, &m1, &cc1, &cw1);
    out.hits = h1 - h0;
    out.misses = m1 - m0;
    out.compileCalls = cc1 - cc0;
    out.compileCpuNs = cw1 - cw0;
    out.lat = recorder.snapshot();
    return out;
}

/** In-process phase on the sweep executor: one cell per request,
 *  `jobs` worker sessions each owning a private device registry.  The
 *  closed loop needs no extra machinery — the executor's dynamic cell
 *  claiming IS the closed loop (a worker takes the next request only
 *  after finishing its current one).  The open loop pins request i to
 *  the scheduled slot t0 + i/rate and measures latency from that slot,
 *  so a late worker's lateness shows up as queueing delay instead of
 *  silently shrinking the measurement (no coordinated omission). */
PhaseOutcome
runPhaseSweep(const std::string &name,
              const std::vector<serve::Request> &mix, unsigned jobs,
              double rate_rps,
              const std::vector<sim::DeviceSpec> &devices)
{
    PhaseOutcome out;
    out.name = name;
    out.hashes.assign(mix.size(), 0);

    uint64_t h0, m0, cc0, cw0;
    inProcCacheCounts(&h0, &m0, &cc0, &cw0);

    std::vector<ResultRec> recs(mix.size());
    std::vector<std::chrono::steady_clock::time_point> issued(
        mix.size());

    harness::SweepOptions opts;
    opts.jobs = jobs;
    opts.devices = devices;

    std::chrono::steady_clock::duration interval{};
    if (rate_rps > 0)
        interval = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(1.0 / rate_rps));

    auto t0 = std::chrono::steady_clock::now();
    harness::SweepStats stats = harness::runSweepPlan(
        mix.size(),
        [&](size_t i) {
            auto start = std::chrono::steady_clock::now();
            if (rate_rps > 0) {
                std::chrono::steady_clock::time_point slot =
                    t0 + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             interval * (long long)i);
                std::this_thread::sleep_until(slot);
                // Latency from the scheduled slot; the actual issue
                // instant (for the offered rate) is whichever is
                // later, the slot or the worker reaching the cell.
                issued[i] = std::max(slot, start);
                start = slot;
            } else {
                issued[i] = start;
            }
            serve::Response r = serve::executeRequest(mix[i]);
            ResultRec &rec = recs[i];
            rec.ok = r.ok;
            rec.validated = r.validated;
            rec.error = r.error;
            rec.hash = r.resultHash;
            rec.clientNs = std::chrono::duration<double, std::nano>(
                               std::chrono::steady_clock::now() - start)
                               .count();
        },
        opts);
    out.wallSec = stats.wallMs / 1e3;

    serve::LatencyRecorder recorder;
    for (size_t i = 0; i < mix.size(); ++i) {
        const ResultRec &rec = recs[i];
        recorder.record(rec.clientNs);
        if (rec.ok && rec.validated) {
            ++out.okCount;
            out.hashes[i] = rec.hash;
        } else {
            ++out.errCount;
            warn("%s: request %zu failed: %s", name.c_str(), i,
                 rec.error.c_str());
        }
    }

    auto first_issue = issued.front(), last_issue = issued.front();
    for (const auto &t : issued) {
        first_issue = std::min(first_issue, t);
        last_issue = std::max(last_issue, t);
    }
    double issue_window =
        std::chrono::duration<double>(last_issue - first_issue)
            .count();
    out.offeredRps =
        mix.size() > 1 && issue_window > 0
            ? (double)(mix.size() - 1) / issue_window
            : (out.wallSec > 0 ? (double)mix.size() / out.wallSec : 0);

    uint64_t h1, m1, cc1, cw1;
    inProcCacheCounts(&h1, &m1, &cc1, &cw1);
    out.hits = h1 - h0;
    out.misses = m1 - m0;
    out.compileCalls = cc1 - cc0;
    out.compileCpuNs = cw1 - cw0;
    out.lat = recorder.snapshot();
    return out;
}

void
printPhase(const PhaseOutcome &p, unsigned clients, unsigned sessions)
{
    double rps = p.wallSec > 0
                     ? (double)(p.okCount + p.errCount) / p.wallSec
                     : 0;
    std::printf(
        "{\"phase\": \"%s\", \"requests\": %llu, \"ok\": %llu, "
        "\"errors\": %llu, \"clients\": %u, \"sessions\": %u, "
        "\"rate_rps\": %.1f, \"wall_s\": %.3f, "
        "\"throughput_rps\": %.2f, \"mean_ns\": %.0f, "
        "\"p50_ns\": %.0f, \"p95_ns\": %.0f, \"p99_ns\": %.0f, "
        "\"cache_hits\": %llu, \"cache_misses\": %llu, "
        "\"hit_rate\": %.4f, \"compile_calls\": %llu, "
        "\"compile_cpu_us\": %.1f}\n",
        p.name.c_str(),
        (unsigned long long)(p.okCount + p.errCount),
        (unsigned long long)p.okCount, (unsigned long long)p.errCount,
        clients, sessions, p.offeredRps, p.wallSec, rps, p.lat.meanNs,
        p.lat.p50Ns, p.lat.p95Ns, p.lat.p99Ns,
        (unsigned long long)p.hits, (unsigned long long)p.misses,
        p.hitRate(), (unsigned long long)p.compileCalls,
        p.compileCpuNs / 1e3);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    size_t requests = 120;
    unsigned clients = 4;
    unsigned sessions = 4;
    uint64_t seed = 42;
    double rate_rps = 0;
    std::string devices_dir, serve_bin;
    bool gate = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--requests")
            requests = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--clients")
            clients = (unsigned)std::strtoul(next().c_str(), nullptr,
                                             10);
        else if (arg == "--sessions")
            sessions = (unsigned)std::strtoul(next().c_str(), nullptr,
                                              10);
        else if (arg == "--seed")
            seed = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--rate")
            rate_rps = std::strtod(next().c_str(), nullptr);
        else if (arg == "--quick")
            requests = 36;
        else if (arg == "--devices")
            devices_dir = next();
        else if (arg == "--serve-bin")
            serve_bin = next();
        else if (arg == "--no-gate")
            gate = false;
        else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }
    if (requests == 0 || clients == 0 || sessions == 0)
        fatal("--requests, --clients and --sessions must be positive");

    // A dying server must surface as read EOF / failed requests, not
    // as a SIGPIPE kill while writing to it.
    signal(SIGPIPE, SIG_IGN);

    std::vector<serve::Request> mix = buildMix(requests, seed);

    // Transport-specific knobs; the three-phase script below is
    // identical for both.
    std::function<void(bool)> cacheEnable;
    std::function<void()> cacheClear;
    std::function<PhaseOutcome(const std::string &)> phase;

    std::unique_ptr<Client> client;
    std::vector<sim::DeviceSpec> devs;
    if (!serve_bin.empty()) {
        client = std::make_unique<PipeClient>(serve_bin, sessions,
                                              devices_dir);
        cacheEnable = [&](bool on) { client->cacheEnable(on); };
        cacheClear = [&] { client->cacheClear(); };
        phase = [&](const std::string &name) {
            return runPhase(*client, name, mix, clients, rate_rps);
        };
    } else {
        // In-process: requests run on sweep-executor worker sessions.
        // Closed loop: one worker per concurrent client, capped by the
        // session budget.  Open loop: the session count alone sizes
        // the pool (clients only gates closed-loop concurrency).
        if (!devices_dir.empty())
            devs = sim::loadDeviceDir(devices_dir);
        unsigned jobs =
            rate_rps > 0 ? sessions : std::min(clients, sessions);
        cacheEnable = [](bool on) {
            sim::CompileCache::setGlobalEnabled(on ? 1 : 0);
        };
        cacheClear = [] { sim::CompileCache::global().clear(); };
        phase = [&, jobs](const std::string &name) {
            return runPhaseSweep(name, mix, jobs, rate_rps, devs);
        };
    }

    // Phase 1: cache disabled (the ablation baseline).
    cacheEnable(false);
    cacheClear();
    PhaseOutcome off = phase("cache_off");
    printPhase(off, clients, sessions);

    // Phase 2: enabled from empty.
    cacheEnable(true);
    cacheClear();
    PhaseOutcome cold = phase("cache_cold");
    printPhase(cold, clients, sessions);

    // Phase 3: the same mix over the populated cache.
    PhaseOutcome warm = phase("cache_warm");
    printPhase(warm, clients, sessions);

    client.reset(); // shuts a spawned server down cleanly

    // Cross-phase verdicts.
    bool hash_match = true;
    for (size_t i = 0; i < mix.size(); ++i) {
        if (off.hashes[i] == 0 || off.hashes[i] != cold.hashes[i] ||
            off.hashes[i] != warm.hashes[i]) {
            warn("hash mismatch at request %zu (%s/%s/%s): "
                 "off=%016llx cold=%016llx warm=%016llx",
                 i, mix[i].bench.c_str(), mix[i].api.c_str(),
                 mix[i].device.c_str(),
                 (unsigned long long)off.hashes[i],
                 (unsigned long long)cold.hashes[i],
                 (unsigned long long)warm.hashes[i]);
            hash_match = false;
        }
    }
    double warm_rate = warm.hitRate();
    bool rate_ok = warm_rate > 0.9;
    double p50_speedup =
        warm.lat.p50Ns > 0 ? off.lat.p50Ns / warm.lat.p50Ns : 0;
    // The latency the cache removes, isolated from execution noise:
    // thread-CPU time spent inside compileKernel per phase.  Warm-
    // phase hits skip validation/decode/lowering — strictly less work
    // — so this must drop whenever the warm phase actually hits.
    double compile_speedup =
        warm.compileCpuNs > 0
            ? (double)off.compileCpuNs / (double)warm.compileCpuNs
            : 0;
    bool compile_ok = compile_speedup > 1.0;

    bool pass = hash_match && rate_ok && compile_ok;
    std::printf("{\"phase\": \"summary\", \"hash_match\": %s, "
                "\"warm_hit_rate\": %.4f, "
                "\"p50_speedup_off_to_warm\": %.3f, "
                "\"compile_cpu_speedup_off_to_warm\": %.3f, "
                "\"gate\": \"%s\"}\n",
                hash_match ? "true" : "false", warm_rate, p50_speedup,
                compile_speedup,
                !gate ? "skipped" : pass ? "pass" : "fail");
    return (gate && !pass) ? 1 : 0;
}

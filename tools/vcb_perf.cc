/**
 * @file
 * vcb_perf — simulator-throughput harness for regression tracking.
 *
 * Runs a fixed mix of suite dispatches (bfs, hotspot, lud, gaussian,
 * srad, kmeans, streamcluster — see kMix below for why each is there)
 * and reports the simulator's own throughput in workgroups per second.
 * Each line reports two times: wall_ms is the whole benchmark run
 * (including host-side workload generation, CPU reference and
 * validation), sim_ms is the time spent inside the execution engine
 * (sim::dispatchWallNs) — workgroups_per_s is workgroups / sim_ms, so
 * the tracked number measures the simulator hot path and is not
 * diluted by constant host-side work.  Output is one JSON object per
 * line so BENCH_*.json trajectory tracking (and the CI log) has a
 * stable machine-readable source:
 *
 *   {"bench": "bfs", "size": "1M", "api": "vulkan", ...}
 *   ...
 *   {"bench": "mix", "wall_ms": ..., "sim_ms": ...,
 *    "workgroups_per_s": ...}
 *
 * For reproducible numbers pin the host parallelism with VCB_THREADS
 * (total executing threads; 1 = fully serial) and compare only the
 * final "mix" line.
 *
 * --suite switches to the per-benchmark snapshot mode: every registry
 * benchmark runs once under the selected API at its preferred
 * submission strategy, and each JSON line carries the strategy tag and
 * the paper's kernel_region_ns metric.  (The CI-tracked suite snapshot
 * is the superset `vcb_report --suite-json --quick` — every device and
 * API, wall-clock-free, committed as BENCH_report.json; --suite stays
 * as the single-device interactive probe.)
 *
 *   vcb_perf            # paper-scale reference mix (largest sizes)
 *   vcb_perf --quick    # small sizes, used as the ctest smoke entry
 *   vcb_perf --repeat 5 # median-of-5 mix (use for BENCH_perf.json)
 *   vcb_perf --suite [--quick]  # per-benchmark kernelRegionNs JSON
 *
 * --repeat N runs the whole mix N times and reports the MEDIAN
 * workgroups/s per benchmark and for the mix, with min/max spread, so
 * committed snapshot numbers are not single-shot noise on a loaded
 * host.  The mix line also carries the per-tier workgroup breakdown
 * (sim::tierWorkgroupCount) so the trajectory records which executor
 * tier did the work.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "harness/sweep.h"
#include "sim/engine.h"
#include "suite/benchmark.h"

using namespace vcb;

namespace {

struct MixEntry
{
    const char *bench;
    /** Index into desktopSizes(): --quick uses the smallest paper
     *  size, the reference mix the largest. */
    size_t quickSize;
    size_t fullSize;
};

/** The reference dispatch mix: the suite benchmarks whose kernel
 *  structure spans the simulator's hot paths (bfs: data-dependent
 *  loops + atomics; hotspot: shared-memory stencil; lud: barriers +
 *  many small dispatches; gaussian: many thin dispatches; srad:
 *  reduction trees + readback-gated stencils; kmeans: uniform inner
 *  loops with a divergent atomic tail; streamcluster: branch-divergent
 *  lanes on the lane-major fallback). */
constexpr MixEntry kMix[] = {
    {"bfs", 0, 2},
    {"hotspot", 0, 2},
    {"lud", 0, 2},
    {"gaussian", 0, 2},
    {"srad", 0, 2},
    {"kmeans", 0, 2},
    {"streamcluster", 0, 2},
};

double
nowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

void
usage()
{
    std::printf("usage: vcb_perf [--quick] [--repeat N] [--suite] "
                "[--jobs N] [--device NAME] "
                "[--api vulkan|opencl|cuda]\n"
                "  --jobs N  (--suite only) sweep-executor sessions; "
                "simulated fields are\n            byte-identical at "
                "any job count (default: VCB_REPORT_JOBS,\n"
                "            else hardware concurrency)\n");
}

/** Median of an unsorted sample (averages the middle pair). */
double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

/** --suite: one JSON line per registry benchmark with the paper's
 *  metric and the submission strategy that produced it.  Runs on the
 *  sweep executor (src/harness/sweep.h): one cell per benchmark on
 *  `jobs` isolated sessions, results printed in registry order — the
 *  simulated fields are byte-identical at any job count; wall_ms and
 *  sim_ms are the executor's per-cell ledger. */
int
runSuiteSnapshot(const sim::DeviceSpec &dev, sim::Api api, bool quick,
                 unsigned jobs)
{
    const auto &benches = suite::registry();
    std::vector<suite::RunResult> results(benches.size());
    std::vector<std::string> labels(benches.size());

    const std::string dev_name = dev.name;
    harness::SweepOptions sweep_opts;
    sweep_opts.jobs = jobs;
    harness::SweepStats stats = harness::runSweepPlan(
        benches.size(),
        [&](size_t cell) {
            const suite::Benchmark *bench = benches[cell];
            auto sizes = bench->desktopSizes();
            const suite::SizeConfig &cfg =
                quick ? sizes.front() : sizes.back();
            labels[cell] = cfg.label;
            // Resolve against the worker session's own registry copy
            // (the Vulkan front-end matches specs by identity).
            results[cell] = bench->run(sim::deviceByName(dev_name),
                                       api, cfg);
        },
        sweep_opts);

    bool all_ok = true;
    double suite_kernel_ns = 0;
    for (size_t b = 0; b < benches.size(); ++b) {
        const suite::RunResult &r = results[b];
        bool ok = r.ok && r.validated;
        all_ok = all_ok && ok;
        suite_kernel_ns += r.kernelRegionNs;
        std::printf("{\"bench\": \"%s\", \"size\": \"%s\", "
                    "\"api\": \"%s\", \"device\": \"%s\", "
                    "\"strategy\": \"%s\", "
                    "\"kernel_region_ns\": %.0f, \"total_ns\": %.0f, "
                    "\"launches\": %llu, \"wall_ms\": %.3f, "
                    "\"sim_ms\": %.3f, \"validated\": %s}\n",
                    benches[b]->name().c_str(), labels[b].c_str(),
                    sim::apiName(api), dev.name.c_str(),
                    r.strategy.c_str(), r.kernelRegionNs, r.totalNs,
                    (unsigned long long)r.launches, stats.cellWallMs[b],
                    stats.cellSimMs[b], ok ? "true" : "false");
        std::fflush(stdout);
    }
    std::printf("{\"bench\": \"suite\", \"mode\": \"%s\", "
                "\"api\": \"%s\", \"device\": \"%s\", "
                "\"kernel_region_ns\": %.0f, \"jobs\": %u, "
                "\"sweep_wall_ms\": %.1f, \"validated\": %s}\n",
                quick ? "quick" : "full", sim::apiName(api),
                dev.name.c_str(), suite_kernel_ns, stats.jobs,
                stats.wallMs, all_ok ? "true" : "false");
    return all_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool suite_mode = false;
    int repeat = 1;
    unsigned jobs = 0; // --suite only; 0 = VCB_REPORT_JOBS/hardware
    std::string device_name = "gtx1050ti";
    std::string api_str = "vulkan";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--quick")
            quick = true;
        else if (arg == "--suite")
            suite_mode = true;
        else if (arg == "--repeat") {
            repeat = std::atoi(next().c_str());
            if (repeat < 1)
                fatal("--repeat needs a positive count");
        }
        else if (arg == "--jobs") {
            int n = std::atoi(next().c_str());
            if (n < 1 || n > 256)
                fatal("--jobs needs a count in 1..256");
            jobs = static_cast<unsigned>(n);
        }
        else if (arg == "--device")
            device_name = next();
        else if (arg == "--api")
            api_str = next();
        else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    sim::Api api;
    if (api_str == "vulkan")
        api = sim::Api::Vulkan;
    else if (api_str == "opencl")
        api = sim::Api::OpenCl;
    else if (api_str == "cuda")
        api = sim::Api::Cuda;
    else
        fatal("unknown API '%s'", api_str.c_str());

    const sim::DeviceSpec &dev = sim::deviceByName(device_name);
    if (!dev.profile(api).available)
        fatal("%s is not available on %s", api_str.c_str(),
              dev.name.c_str());

    if (suite_mode)
        return runSuiteSnapshot(dev, api, quick, jobs);

    const char *threads_env = std::getenv("VCB_THREADS");

    constexpr size_t kBenches = std::size(kMix);
    // Per-bench samples across repeats.
    std::vector<std::vector<double>> b_wall(kBenches), b_sim(kBenches),
        b_wgps(kBenches);
    uint64_t b_wgs[kBenches] = {};
    uint64_t b_launches[kBenches] = {};
    std::string b_label[kBenches];
    std::vector<double> mix_wall_r, mix_sim_r, mix_wgps_r;
    uint64_t mix_wgs = 0;
    uint64_t tier0[static_cast<size_t>(sim::ExecTier::Count)];
    for (size_t t = 0; t < static_cast<size_t>(sim::ExecTier::Count);
         ++t)
        tier0[t] = sim::tierWorkgroupCount(static_cast<sim::ExecTier>(t));
    bool all_ok = true;

    for (int rep = 0; rep < repeat; ++rep) {
        uint64_t rep_wgs = 0;
        double rep_wall = 0;
        double rep_sim = 0;
        for (size_t b = 0; b < kBenches; ++b) {
            const MixEntry &e = kMix[b];
            const suite::Benchmark &bench = suite::byName(e.bench);
            auto sizes = bench.desktopSizes();
            size_t idx = quick ? e.quickSize : e.fullSize;
            VCB_ASSERT(idx < sizes.size(),
                       "mix size index out of range");
            const suite::SizeConfig &cfg = sizes[idx];

            uint64_t wg0 = sim::executedWorkgroupCount();
            uint64_t sim0 = sim::dispatchWallNs();
            double t0 = nowMs();
            suite::RunResult r = bench.run(dev, api, cfg);
            double wall_ms = nowMs() - t0;
            double sim_ms = (sim::dispatchWallNs() - sim0) / 1e6;
            uint64_t wgs = sim::executedWorkgroupCount() - wg0;

            all_ok = all_ok && r.ok && r.validated;
            b_wall[b].push_back(wall_ms);
            b_sim[b].push_back(sim_ms);
            b_wgps[b].push_back(sim_ms > 0 ? wgs * 1e3 / sim_ms : 0.0);
            b_wgs[b] = wgs;
            b_launches[b] = r.launches;
            b_label[b] = cfg.label;
            rep_wgs += wgs;
            rep_wall += wall_ms;
            rep_sim += sim_ms;
        }
        mix_wgs = rep_wgs;
        mix_wall_r.push_back(rep_wall);
        mix_sim_r.push_back(rep_sim);
        mix_wgps_r.push_back(rep_sim > 0 ? rep_wgs * 1e3 / rep_sim
                                         : 0.0);
    }

    for (size_t b = 0; b < kBenches; ++b) {
        std::printf("{\"bench\": \"%s\", \"size\": \"%s\", "
                    "\"api\": \"%s\", \"device\": \"%s\", "
                    "\"wall_ms\": %.3f, \"sim_ms\": %.3f, "
                    "\"workgroups\": %llu, "
                    "\"workgroups_per_s\": %.0f, \"launches\": %llu, "
                    "\"validated\": %s}\n",
                    kMix[b].bench, b_label[b].c_str(),
                    sim::apiName(api), dev.name.c_str(),
                    median(b_wall[b]), median(b_sim[b]),
                    (unsigned long long)b_wgs[b], median(b_wgps[b]),
                    (unsigned long long)b_launches[b],
                    all_ok ? "true" : "false");
        std::fflush(stdout);
    }

    // Per-tier workgroup counts over the whole run: which executor
    // tier actually did the work (telemetry, not simulation state).
    uint64_t tier_wgs[static_cast<size_t>(sim::ExecTier::Count)];
    for (size_t t = 0; t < static_cast<size_t>(sim::ExecTier::Count);
         ++t)
        tier_wgs[t] =
            sim::tierWorkgroupCount(static_cast<sim::ExecTier>(t)) -
            tier0[t];

    const double wgps_med = median(mix_wgps_r);
    const double wgps_min =
        *std::min_element(mix_wgps_r.begin(), mix_wgps_r.end());
    const double wgps_max =
        *std::max_element(mix_wgps_r.begin(), mix_wgps_r.end());
    std::printf(
        "{\"bench\": \"mix\", \"mode\": \"%s\", "
        "\"wall_ms\": %.3f, \"sim_ms\": %.3f, "
        "\"workgroups\": %llu, "
        "\"workgroups_per_s\": %.0f, "
        "\"wgps_min\": %.0f, \"wgps_max\": %.0f, "
        "\"repeats\": %d, "
        "\"tiers\": {\"trace\": %llu, \"block\": %llu, "
        "\"lanemajor\": %llu, \"instrumented\": %llu}, "
        "\"vcb_threads\": \"%s\", \"validated\": %s}\n",
        quick ? "quick" : "full", median(mix_wall_r),
        median(mix_sim_r), (unsigned long long)mix_wgs, wgps_med,
        wgps_min, wgps_max, repeat,
        (unsigned long long)
            tier_wgs[static_cast<size_t>(sim::ExecTier::Trace)],
        (unsigned long long)
            tier_wgs[static_cast<size_t>(sim::ExecTier::Block)],
        (unsigned long long)
            tier_wgs[static_cast<size_t>(sim::ExecTier::LaneMajor)],
        (unsigned long long)
            tier_wgs[static_cast<size_t>(sim::ExecTier::Instrumented)],
        threads_env ? threads_env : "default",
        all_ok ? "true" : "false");
    return all_ok ? 0 : 1;
}

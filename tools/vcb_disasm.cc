/**
 * @file
 * vcb_disasm — kernel listing tool (the suite's CodeXL analogue).
 *
 * The paper diagnosed bfs's Vulkan slowdown by disassembling the
 * driver-generated ISA; this tool prints any suite kernel's IR
 * listing, its binary size, and how each driver compiler treats it on
 * a device (promotion honoured or not, code-quality factor, compile
 * cost):
 *
 *   vcb_disasm bfs_kernel1
 *   vcb_disasm hotspot_step --device adreno
 *   vcb_disasm --list
 */

#include <cstdio>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strutil.h"
#include "kernels/kernels.h"
#include "sim/kernel.h"
#include "spirv/module.h"

using namespace vcb;

int
main(int argc, char **argv)
{
    std::string name;
    std::string device_name = "gtx1050ti";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            std::vector<std::string> names;
            for (const auto &[k, fn] : kernels::kernelRegistry())
                names.push_back(k);
            std::sort(names.begin(), names.end());
            for (const auto &k : names)
                std::printf("%s\n", k.c_str());
            return 0;
        }
        if (arg == "--device") {
            if (i + 1 >= argc)
                fatal("missing value for --device");
            device_name = argv[++i];
        } else {
            name = arg;
        }
    }
    if (name.empty()) {
        std::printf("usage: vcb_disasm KERNEL [--device NAME] | "
                    "--list\n");
        return 1;
    }

    const auto &reg = kernels::kernelRegistry();
    if (std::none_of(reg.begin(), reg.end(),
                     [&](const auto &e) { return e.first == name; }))
        fatal("unknown kernel '%s' (try --list)", name.c_str());
    spirv::Module m = kernels::buildByName(name);

    std::vector<uint32_t> words = m.serialize();
    std::printf("%s\n", spirv::disassemble(m).c_str());
    std::printf("; binary: %zu words (%s), %zu instructions\n",
                words.size(), formatBytes(words.size() * 4).c_str(),
                m.insnCount());

    const sim::DeviceSpec &dev = sim::deviceByName(device_name);
    std::printf("\n; driver compilation on %s:\n", dev.name.c_str());
    std::unique_ptr<sim::CompiledKernel> lowered;
    for (sim::Api api :
         {sim::Api::Vulkan, sim::Api::OpenCl, sim::Api::Cuda}) {
        if (!dev.profile(api).available) {
            std::printf(";   %-7s not available\n", sim::apiName(api));
            continue;
        }
        std::string err;
        auto k = sim::compileKernel(m, dev, api, &err);
        if (!k) {
            std::printf(";   %-7s REJECTED: %s\n", sim::apiName(api),
                        err.c_str());
            continue;
        }
        std::printf(";   %-7s promote-hints=%s quality=%.2f "
                    "compile=%s\n",
                    sim::apiName(api), k->promoted ? "honoured" : "ignored",
                    k->codeQualityEff,
                    formatNs(k->compileNs).c_str());
        if (!lowered)
            lowered = std::move(k);
    }

    // Micro-op lowering (API-independent): the stream the interpreter
    // executes, with fused pairs, superops and hoisted template ops
    // rendered symbolically.
    if (lowered) {
        std::printf("\n; micro-op lowering (executor tier: %s):\n",
                    sim::execTierName(
                        sim::chooseExecTier(*lowered->micro)));
        std::printf("%s", sim::disassembleMicro(*lowered->micro).c_str());
    }
    return 0;
}

/**
 * @file
 * vcb_report — the one-command paper-report pipeline.
 *
 * Loads the device registry from the `.dev` spec files in `devices/`
 * (zero recompilation to add a device), runs every registered benchmark
 * under every available API and every admissible Vulkan submission
 * strategy on every device, and emits the full artifact set through
 * the shared report-book layer (src/harness/report_book.h):
 *
 *   vcb_report                      # print the Markdown results book
 *   vcb_report --dry-run            # shrunken sizes (CI / smoke scale)
 *   vcb_report --out DIR            # artifact tree:
 *                                   #   DIR/RESULTS.md   results book
 *                                   #   DIR/suite.json   suite JSON lines
 *                                   #   DIR/csv/<dev>.csv  per-device CSV
 *   vcb_report --check FILE         # regenerate the book and fail on
 *                                   # any byte difference from FILE
 *                                   # (CI: docs/RESULTS.md drift gate)
 *   vcb_report --suite-json         # suite JSON lines to stdout — the
 *                                   # superset of `vcb_perf --suite`
 *                                   # tracked as BENCH_report.json
 *   vcb_report --quick              # smoke: build everything at dry
 *                                   # scale, print a one-line verdict
 *   vcb_report --write-builtin-specs DIR
 *                                   # serialize the four compiled-in
 *                                   # paper devices as spec files
 *
 * --devices DIR (default "devices") selects the spec directory.  The
 * standalone bench/fig* and bench/tab* binaries print the same
 * sections from the same renderers, so the book cannot drift from
 * them.  Exit status is non-zero when any executed run fails
 * validation or a --check finds drift.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strutil.h"
#include "harness/report_book.h"
#include "sim/device_file.h"
#include "suite/benchmark.h"

using namespace vcb;

namespace {

void
usage()
{
    std::printf(
        "usage: vcb_report [--devices DIR] [--dry-run] [--quick]\n"
        "                  [--out DIR] [--check FILE] [--suite-json]\n"
        "                  [--jobs N] [--write-builtin-specs DIR]\n"
        "  --jobs N   sweep-executor worker sessions (default:\n"
        "             VCB_REPORT_JOBS, else hardware concurrency);\n"
        "             output is byte-identical at any job count\n");
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << content;
    if (!out)
        fatal("short write to '%s'", path.c_str());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

int
writeBuiltinSpecs(const std::string &dir)
{
    std::filesystem::create_directories(dir);
    const std::pair<const char *, const sim::DeviceSpec &> parts[] = {
        {"gtx1050ti", sim::gtx1050ti()},
        {"rx560", sim::rx560()},
        {"adreno506", sim::adreno506()},
        {"powervr_g6430", sim::powervrG6430()},
    };
    for (const auto &[stem, dev] : parts) {
        std::string path = dir + "/" + stem + ".dev";
        writeFile(path, sim::serializeDevice(dev));
        std::printf("wrote %s (%s)\n", path.c_str(), dev.name.c_str());
    }
    return 0;
}

/** Report the first differing line of a --check mismatch. */
void
reportDrift(const std::string &want_path, const std::string &want,
            const std::string &got)
{
    std::vector<std::string> want_lines = split(want, '\n');
    std::vector<std::string> got_lines = split(got, '\n');
    size_t n = std::min(want_lines.size(), got_lines.size());
    for (size_t i = 0; i < n; ++i) {
        if (want_lines[i] != got_lines[i]) {
            std::fprintf(stderr,
                         "vcb_report: %s drifts at line %zu:\n"
                         "  committed: %s\n"
                         "  generated: %s\n",
                         want_path.c_str(), i + 1,
                         want_lines[i].c_str(), got_lines[i].c_str());
            return;
        }
    }
    std::fprintf(stderr,
                 "vcb_report: %s drifts: committed has %zu lines, "
                 "generated has %zu\n",
                 want_path.c_str(), want_lines.size(),
                 got_lines.size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string devices_dir = "devices";
    std::string out_dir;
    std::string check_file;
    std::string write_specs_dir;
    bool dry_run = false;
    bool quick = false;
    bool suite_json = false;
    unsigned jobs = 0; // 0 = VCB_REPORT_JOBS, else hardware

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--devices")
            devices_dir = next();
        else if (arg == "--dry-run")
            dry_run = true;
        else if (arg == "--quick")
            quick = true;
        else if (arg == "--out")
            out_dir = next();
        else if (arg == "--check")
            check_file = next();
        else if (arg == "--suite-json")
            suite_json = true;
        else if (arg == "--jobs") {
            std::string v = next();
            char *end = nullptr;
            long n = std::strtol(v.c_str(), &end, 10);
            if (!end || *end != '\0' || n < 1 || n > 256)
                fatal("invalid --jobs '%s' (want 1..256)", v.c_str());
            jobs = static_cast<unsigned>(n);
        } else if (arg == "--write-builtin-specs")
            write_specs_dir = next();
        else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    if (!write_specs_dir.empty())
        return writeBuiltinSpecs(write_specs_dir);

    // Load the spec files and install them as the registry the
    // runtime front-ends enumerate; all runs reference these objects.
    const std::vector<sim::DeviceSpec> &devices =
        harness::resolveReportDevices(devices_dir);
    inform("loaded %zu device specs from %s", devices.size(),
           devices_dir.c_str());

    if (suite_json) {
        bool all_ok = false;
        std::string lines =
            harness::suiteJsonLines(devices, quick, &all_ok, jobs);
        std::fputs(lines.c_str(), stdout);
        return all_ok ? 0 : 1;
    }

    bool dry = dry_run || quick;
    harness::ReportBook book =
        harness::buildReportBook(devices, dry, jobs);
    // Wall-clock trajectory of the build (stderr: the book itself is
    // deterministic and byte-diffed, so it never carries wall time).
    inform("sweep: %zu cells on %u jobs in %.1f ms (sim %.1f ms)",
           book.cells, book.jobs, book.sweepWallMs, book.sweepSimMs);
    std::string markdown = harness::renderResultsBook(book);
    bool ok = book.allValidated();
    if (!ok)
        std::fprintf(stderr,
                     "vcb_report: some runs failed validation\n");

    bool drift = false;
    if (!check_file.empty()) {
        std::string committed = readFile(check_file);
        if (committed != markdown) {
            drift = true;
            reportDrift(check_file, committed, markdown);
            std::fprintf(stderr,
                         "vcb_report: regenerate with: "
                         "build/tools/vcb_report --dry-run > %s\n",
                         check_file.c_str());
        } else {
            std::printf("vcb_report: %s is up to date (%zu bytes)\n",
                        check_file.c_str(), markdown.size());
        }
    }

    if (!out_dir.empty()) {
        namespace fs = std::filesystem;
        fs::create_directories(out_dir);
        fs::create_directories(out_dir + "/csv");
        writeFile(out_dir + "/RESULTS.md", markdown);
        for (const harness::DeviceReport &report : book.devices)
            writeFile(out_dir + "/csv/" +
                          harness::deviceSlug(report.dev->name) + ".csv",
                      harness::deviceCsv(report));
        // Rendered from the already-built book: the artifact tree is
        // internally consistent and costs one suite run, not two.
        writeFile(out_dir + "/suite.json",
                  harness::suiteJsonFromBook(book));
        std::printf("vcb_report: wrote %s/RESULTS.md, %s/suite.json "
                    "and %zu per-device CSVs under %s/csv/\n",
                    out_dir.c_str(), out_dir.c_str(),
                    book.devices.size(), out_dir.c_str());
    }

    if (check_file.empty() && out_dir.empty()) {
        if (quick)
            std::printf("vcb_report --quick: %zu devices x %zu "
                        "benchmarks x %d APIs x strategies, %s\n",
                        book.devices.size(),
                        suite::registry().size(), sim::apiCount,
                        ok ? "all executed runs validated"
                           : "VALIDATION FAILURES");
        else
            std::fputs(markdown.c_str(), stdout);
    }

    return (ok && !drift) ? 0 : 1;
}

#!/bin/sh
# gen_bench_perf.sh — regenerates BENCH_perf.json, the committed
# interpreter-throughput snapshot: the reference mix's median-of-N
# workgroups/s (with min/max spread and the per-executor-tier
# workgroup breakdown) at VCB_THREADS=1 and VCB_THREADS=4, plus the
# quick mix at VCB_THREADS=1 which the perf_guard ctest entry compares
# against (tools/perf_guard.sh).
#
# Unlike BENCH_report.json this snapshot is wall-clock derived, so it
# is never diffed byte-for-byte; it records the trajectory on the
# reference machine and feeds the relative-drop regression guard.
#
# Usage: tools/gen_bench_perf.sh [vcb_perf-binary] > BENCH_perf.json
# (default binary: <repo>/build/vcb_perf; repeats: VCB_PERF_REPEATS
# or 5)

set -eu
root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
bin=${1:-"$root/build/vcb_perf"}
repeats=${VCB_PERF_REPEATS:-5}

if [ ! -x "$bin" ]; then
    echo "gen_bench_perf: $bin not built" >&2
    exit 1
fi

mix() { # threads [extra-args...]
    threads=$1; shift
    VCB_THREADS=$threads "$bin" --repeat "$repeats" "$@" 2>/dev/null |
        grep '"bench": "mix"'
}

full1=$(mix 1)
full4=$(mix 4)
quick1=$(mix 1 --quick)

cat <<EOF
{
  "comment": "interpreter throughput snapshot; regenerate with tools/gen_bench_perf.sh > BENCH_perf.json",
  "repeats": $repeats,
  "full": {
    "threads1": $full1,
    "threads4": $full4
  },
  "quick": {
    "threads1": $quick1
  }
}
EOF

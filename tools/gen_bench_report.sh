#!/bin/sh
# gen_bench_report.sh — regenerates BENCH_report.json, the committed
# per-benchmark kernel-region snapshot across every spec-file device
# and API (vcb_report --suite-json --quick).
#
# The suite runs TWICE on the sweep executor, at --jobs 1 and
# --jobs 4, and the script fails if the deterministic lines differ by
# a byte — the executor's any-job-count identity guarantee, enforced
# at snapshot-generation time.  The emitted file is the deterministic
# lines followed by BOTH runs' sweep ledger lines ("bench": "sweep",
# carrying jobs and sweep_wall_ms), so the snapshot records the
# parallel speedup on the machine that generated it.  Consumers that
# byte-diff the snapshot must filter the wall-clock ledger first:
#   grep -v '"bench": "sweep"'
#
# Usage: tools/gen_bench_report.sh [vcb_report-binary] > BENCH_report.json
# (default binary: <repo>/build/tools/vcb_report)

set -eu
root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
bin=${1:-"$root/build/tools/vcb_report"}

if [ ! -x "$bin" ]; then
    echo "gen_bench_report: $bin not built" >&2
    exit 1
fi

j1=$("$bin" --devices "$root/devices" --suite-json --quick --jobs 1 2>/dev/null)
j4=$("$bin" --devices "$root/devices" --suite-json --quick --jobs 4 2>/dev/null)

det1=$(printf '%s\n' "$j1" | grep -v '"bench": "sweep"')
det4=$(printf '%s\n' "$j4" | grep -v '"bench": "sweep"')
if [ "$det1" != "$det4" ]; then
    echo "gen_bench_report: --jobs 1 and --jobs 4 outputs differ" >&2
    printf '%s\n' "$det1" > /tmp/gen_bench_report.j1.$$
    printf '%s\n' "$det4" | diff -u /tmp/gen_bench_report.j1.$$ - >&2 || true
    rm -f /tmp/gen_bench_report.j1.$$
    exit 1
fi

printf '%s\n' "$det1"
printf '%s\n' "$j1" | grep '"bench": "sweep"'
printf '%s\n' "$j4" | grep '"bench": "sweep"'

/**
 * @file
 * vcb_serve — long-lived benchmark-serving process.
 *
 * Reads newline-delimited flat-JSON requests on stdin (the protocol
 * is documented in src/serve/protocol.h), shards run requests across
 * a pool of engine sessions (each with its own device registry), and
 * writes one response line per request to stdout in COMPLETION order
 * — the echoed id is the correlation key.  Malformed lines get an
 * "error" response and never crash the server.
 *
 *   vcb_serve [--sessions N] [--devices DIR] [--self-test]
 *
 *   --sessions N    engine-session pool size (default 4)
 *   --devices DIR   serve the spec-file registry from DIR instead of
 *                   the compiled-in paper devices
 *   --self-test     run the built-in protocol + bit-identity check
 *                   and exit (0 = pass)
 *
 * EOF on stdin drains every session and exits cleanly, so
 * `vcb_serve < requests.ndjson > results.ndjson` is a batch runner.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>

#include "common/logging.h"
#include "serve/serve.h"
#include "sim/compile_cache.h"
#include "sim/device_file.h"

using namespace vcb;

namespace {

void
usage()
{
    std::printf("usage: vcb_serve [--sessions N] [--devices DIR] "
                "[--self-test]\n");
}

std::mutex out_mtx;

void
emit(const serve::Response &r)
{
    std::lock_guard<std::mutex> lk(out_mtx);
    std::printf("%s\n", serve::serializeResponse(r).c_str());
    std::fflush(stdout);
}

void
emitRaw(const std::string &line)
{
    std::lock_guard<std::mutex> lk(out_mtx);
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
}

serve::Response
ack(const serve::Request &req, const char *cmd)
{
    serve::Response r;
    r.type = "ok";
    r.id = req.id;
    r.ok = true;
    r.cmd = cmd;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned sessions = 4;
    std::string devices_dir;
    bool self_test = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--sessions") {
            long v = std::strtol(next().c_str(), nullptr, 10);
            if (v < 1 || v > 64)
                fatal("--sessions must be in [1, 64]");
            sessions = (unsigned)v;
        } else if (arg == "--devices") {
            devices_dir = next();
        } else if (arg == "--self-test") {
            self_test = true;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    if (self_test)
        return serve::runSelfTest() == 0 ? 0 : 1;

    serve::BrokerConfig cfg;
    cfg.sessions = sessions;
    if (!devices_dir.empty())
        cfg.devices = sim::loadDeviceDir(devices_dir);
    serve::ServeBroker broker(cfg);

    inform("vcb_serve: %u sessions, %s registry, compile cache %s",
           broker.sessionCount(),
           devices_dir.empty() ? "compiled-in" : devices_dir.c_str(),
           sim::CompileCache::globalEnabled() ? "on" : "off");

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        serve::Request req;
        std::string err;
        if (!serve::parseRequestLine(line, &req, &err)) {
            ++broker.metrics().rejected;
            serve::Response r;
            r.type = "error";
            r.ok = false;
            r.error = err;
            emit(r);
            continue;
        }
        switch (req.kind) {
          case serve::Request::Kind::Run:
            broker.submit(req, emit);
            break;
          case serve::Request::Kind::Stats:
            emitRaw(broker.statsLine(req.id));
            break;
          case serve::Request::Kind::Drain:
            broker.drain();
            emit(ack(req, "drain"));
            break;
          case serve::Request::Kind::Cache:
            sim::CompileCache::setGlobalEnabled(req.cacheEnabled ? 1
                                                                 : 0);
            emit(ack(req, "cache"));
            break;
          case serve::Request::Kind::CacheClear:
            sim::CompileCache::global().clear();
            emit(ack(req, "cache_clear"));
            break;
          case serve::Request::Kind::Shutdown:
            broker.drain();
            emit(ack(req, "shutdown"));
            return 0;
        }
    }

    // EOF: graceful drain (the ~ServeBroker would drain too; doing it
    // here keeps every response ahead of process exit).
    broker.drain();
    return 0;
}

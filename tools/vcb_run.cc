/**
 * @file
 * vcb_run — command-line front end for the suite.
 *
 * Run any benchmark on any simulated device under any API:
 *
 *   vcb_run --bench pathfinder --device gtx1050ti --api vulkan
 *   vcb_run --bench bfs --device adreno --api opencl --size 1
 *   vcb_run --bench gaussian --params 96 --api all
 *   vcb_run --list
 *
 * --size selects a desktop size index (0..2) or mobile index for
 * mobile devices; --params overrides the size parameters directly.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strutil.h"
#include "harness/report.h"
#include "suite/benchmark.h"

using namespace vcb;

namespace {

void
usage()
{
    std::printf(
        "usage: vcb_run [--list] --bench NAME [--device NAME]\n"
        "               [--api vulkan|opencl|cuda|all] [--size IDX]\n"
        "               [--params P1,P2,...]\n");
}

sim::Api
parseApi(const std::string &s)
{
    std::string l = toLower(s);
    if (l == "vulkan" || l == "vk")
        return sim::Api::Vulkan;
    if (l == "opencl" || l == "cl")
        return sim::Api::OpenCl;
    if (l == "cuda" || l == "cu")
        return sim::Api::Cuda;
    fatal("unknown API '%s'", s.c_str());
}

void
listEverything()
{
    harness::Table benches({"bench", "application", "desktop sizes",
                            "mobile sizes"});
    for (const suite::Benchmark *b : suite::registry()) {
        std::string desk, mob;
        for (const auto &s : b->desktopSizes())
            desk += s.label + " ";
        for (const auto &s : b->mobileSizes())
            mob += s.label + " ";
        if (mob.empty())
            mob = "(none)";
        benches.addRow({b->name(), b->fullName(), desk, mob});
    }
    std::printf("%s\n", benches.render().c_str());

    harness::Table devs({"device", "class", "Vulkan", "OpenCL", "CUDA"});
    for (const auto &d : sim::deviceRegistry()) {
        auto yn = [&](sim::Api api) {
            return d.profile(api).available ? "yes" : "-";
        };
        devs.addRow({d.name, d.mobile ? "mobile" : "desktop",
                     yn(sim::Api::Vulkan), yn(sim::Api::OpenCl),
                     yn(sim::Api::Cuda)});
    }
    std::printf("%s", devs.render().c_str());
}

void
runOne(const suite::Benchmark &bench, const sim::DeviceSpec &dev,
       sim::Api api, const suite::SizeConfig &cfg)
{
    suite::RunResult r = bench.run(dev, api, cfg);
    if (!r.ok) {
        std::printf("%-7s SKIPPED: %s\n", sim::apiName(api),
                    r.skipReason.c_str());
        return;
    }
    std::printf("%-7s kernel region %-12s total %-12s launches %-6llu "
                "%s\n",
                sim::apiName(api), formatNs(r.kernelRegionNs).c_str(),
                formatNs(r.totalNs).c_str(),
                (unsigned long long)r.launches,
                r.validated ? "VALIDATED"
                            : ("INVALID: " + r.validationError).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench_name, device_name = "gtx1050ti", api_str = "all";
    std::string params_str;
    size_t size_idx = 0;
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--list")
            list = true;
        else if (arg == "--bench")
            bench_name = next();
        else if (arg == "--device")
            device_name = next();
        else if (arg == "--api")
            api_str = next();
        else if (arg == "--size")
            size_idx = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--params")
            params_str = next();
        else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    if (list) {
        listEverything();
        return 0;
    }
    if (bench_name.empty()) {
        usage();
        return 1;
    }

    const suite::Benchmark &bench = suite::byName(bench_name);
    const sim::DeviceSpec &dev = sim::deviceByName(device_name);

    suite::SizeConfig cfg;
    if (!params_str.empty()) {
        cfg.label = "custom";
        for (const std::string &p : split(params_str, ','))
            cfg.params.push_back(parseSize(p));
    } else {
        auto sizes = bench.sizesFor(dev);
        if (sizes.empty())
            fatal("%s has no sizes for %s: %s", bench_name.c_str(),
                  dev.name.c_str(), bench.mobileSkipReason(dev).c_str());
        if (size_idx >= sizes.size())
            fatal("--size %zu out of range (%zu sizes)", size_idx,
                  sizes.size());
        cfg = sizes[size_idx];
    }

    std::printf("%s [%s] on %s, size '%s'\n", bench_name.c_str(),
                bench.fullName().c_str(), dev.name.c_str(),
                cfg.label.c_str());
    if (api_str == "all") {
        for (sim::Api api :
             {sim::Api::OpenCl, sim::Api::Vulkan, sim::Api::Cuda}) {
            if (dev.profile(api).available)
                runOne(bench, dev, api, cfg);
        }
    } else {
        runOne(bench, dev, parseApi(api_str), cfg);
    }
    return 0;
}

/** @file Integration tests: the figures' *shape* — the paper's
 *  qualitative findings — asserted end to end through the public
 *  APIs.  Sizes are reduced where possible; the slowest cases take a
 *  few seconds. */

#include <gtest/gtest.h>

#include "harness/figures.h"
#include "suite/bandwidth.h"
#include "suite/benchmark.h"

namespace vcb {
namespace {

using sim::Api;
using suite::RunResult;
using suite::SizeConfig;

double
speedup(const std::string &bench, const sim::DeviceSpec &dev,
        Api api_num, Api api_den, const SizeConfig &cfg)
{
    RunResult num = suite::byName(bench).run(dev, api_num, cfg);
    RunResult den = suite::byName(bench).run(dev, api_den, cfg);
    EXPECT_TRUE(num.ok) << num.skipReason;
    EXPECT_TRUE(den.ok) << den.skipReason;
    EXPECT_TRUE(num.validated) << num.validationError;
    EXPECT_TRUE(den.validated) << den.validationError;
    return den.kernelRegionNs / num.kernelRegionNs;
}

// --- Fig. 2 shape (desktop) ------------------------------------------------

TEST(Fig2Shape, VulkanWinsBlockingIterativeBenchmarks)
{
    // pathfinder / gaussian / hotspot: the command-buffer+barrier
    // optimisation eliminates per-iteration launch overhead.
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    EXPECT_GT(speedup("pathfinder", dev, Api::Vulkan, Api::OpenCl,
                      {"t", {48, 8192}}),
              1.5);
    EXPECT_GT(speedup("gaussian", dev, Api::Vulkan, Api::OpenCl,
                      {"t", {96}}),
              1.5);
    EXPECT_GT(speedup("hotspot", dev, Api::Vulkan, Api::OpenCl,
                      {"t", {128, 8}}),
              1.3);
}

TEST(Fig2Shape, BfsSlowsDownOnBothDesktopGpus)
{
    // The immature SPIR-V compiler misses the local-memory promotion
    // (Sec. V-A2): Vulkan bfs loses despite the overhead savings.
    SizeConfig cfg{"t", {49152}};
    EXPECT_LT(speedup("bfs", sim::gtx1050ti(), Api::Vulkan, Api::OpenCl,
                      cfg),
              1.0);
    EXPECT_LT(speedup("bfs", sim::rx560(), Api::Vulkan, Api::OpenCl,
                      cfg),
              1.0);
}

TEST(Fig2Shape, NoDependencyBenchmarksNearParity)
{
    // backprop / nn / nw: no per-iteration host round trips to save.
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    double nn = speedup("nn", dev, Api::Vulkan, Api::OpenCl,
                        {"t", {262144}});
    EXPECT_GT(nn, 0.75);
    EXPECT_LT(nn, 1.25);
    double nw = speedup("nw", dev, Api::Vulkan, Api::OpenCl,
                        {"t", {1024}});
    EXPECT_GT(nw, 0.75);
    EXPECT_LT(nw, 1.35);
}

TEST(Fig2Shape, HotspotSpeedupGrowsWithStepCount)
{
    // Paper: "the speedup increases as we increase the input size" —
    // hotspot's iteration count is its size axis.
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    double s8 = speedup("hotspot", dev, Api::Vulkan, Api::OpenCl,
                        {"t", {128, 8}});
    double s32 = speedup("hotspot", dev, Api::Vulkan, Api::OpenCl,
                         {"t", {128, 32}});
    EXPECT_GT(s32, s8);
}

TEST(Fig2Shape, CfdOnlyMarginalOnOpenCl)
{
    // Three pipeline binds per iteration + fixed iteration count.
    double s = speedup("cfd", sim::gtx1050ti(), Api::Vulkan, Api::OpenCl,
                       {"t", {16384}});
    EXPECT_GT(s, 0.9);
    EXPECT_LT(s, 1.6);
}

// --- Fig. 4 shape (mobile) ---------------------------------------------------

TEST(Fig4Shape, PathfinderIsTheLoneSnapdragonWinner)
{
    const sim::DeviceSpec &dev = sim::adreno506();
    EXPECT_GT(speedup("pathfinder", dev, Api::Vulkan, Api::OpenCl,
                      {"t", {32, 512}}),
              1.2);
    EXPECT_LT(speedup("gaussian", dev, Api::Vulkan, Api::OpenCl,
                      {"t", {48}}),
              1.0);
    EXPECT_LT(speedup("nn", dev, Api::Vulkan, Api::OpenCl,
                      {"t", {65536}}),
              1.05);
}

TEST(Fig4Shape, HotspotIsTheNexusException)
{
    const sim::DeviceSpec &dev = sim::powervrG6430();
    // Most benchmarks win on the Nexus...
    EXPECT_GT(speedup("gaussian", dev, Api::Vulkan, Api::OpenCl,
                      {"t", {48}}),
              1.3);
    // ...hotspot does not (Sec. V-B2).
    EXPECT_LT(speedup("hotspot", dev, Api::Vulkan, Api::OpenCl,
                      {"t", {128, 8}}),
              1.0);
}

// --- Figs. 1 and 3 shape (bandwidth) -----------------------------------------

TEST(Fig1Shape, BandwidthFallsWithStrideAndVulkanLeadsWideStrides)
{
    // The figure's configuration: enough rounds that fixed costs do
    // not distort the unit-stride comparison.
    suite::BandwidthConfig cfg;
    std::vector<uint32_t> strides = {1, 4, 16, 32};
    auto vk = suite::runBandwidthSweep(sim::gtx1050ti(), Api::Vulkan,
                                       strides, cfg);
    auto cu = suite::runBandwidthSweep(sim::gtx1050ti(), Api::Cuda,
                                       strides, cfg);
    // Monotone non-increasing.
    for (size_t i = 1; i < vk.size(); ++i) {
        EXPECT_LE(vk[i].gbPerSec, vk[i - 1].gbPerSec * 1.001);
        EXPECT_LE(cu[i].gbPerSec, cu[i - 1].gbPerSec * 1.001);
    }
    // CUDA ahead at unit stride; Vulkan ahead beyond 64-byte strides.
    EXPECT_GT(cu[0].gbPerSec, vk[0].gbPerSec);
    EXPECT_GT(vk[3].gbPerSec, cu[3].gbPerSec);
}

TEST(Fig3Shape, SnapdragonPushConstantQuirkHurtsSmallStrides)
{
    suite::BandwidthConfig cfg;
    cfg.threads = 2048;
    cfg.rounds = 16;
    cfg.repeats = 2;
    std::vector<uint32_t> strides = {1, 16};
    auto vk = suite::runBandwidthSweep(sim::adreno506(), Api::Vulkan,
                                       strides, cfg);
    auto cl = suite::runBandwidthSweep(sim::adreno506(), Api::OpenCl,
                                       strides, cfg);
    double small_ratio = vk[0].gbPerSec / cl[0].gbPerSec;
    double large_ratio = vk[1].gbPerSec / cl[1].gbPerSec;
    EXPECT_LT(small_ratio, 0.95); // Vulkan worse below 16-byte strides
    EXPECT_GT(large_ratio, small_ratio); // converging above
}

// --- modelled driver behaviours ----------------------------------------------------

TEST(Integration, JitExcludedKernelRegionStillChargesTotal)
{
    // OpenCL JIT lands before the kernel region (the paper's rationale
    // for reporting kernel times only).
    RunResult r = suite::byName("nn").run(sim::gtx1050ti(), Api::OpenCl,
                                          {"t", {65536}});
    ASSERT_TRUE(r.ok);
    EXPECT_LT(r.kernelRegionNs, r.totalNs);
}

} // namespace
} // namespace vcb

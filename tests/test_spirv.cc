/** @file Unit tests for the kernel IR: opcodes, module binary format,
 *  builder, validator and disassembler. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "spirv/builder.h"
#include "spirv/module.h"

namespace vcb::spirv {
namespace {

Module
tinyModule()
{
    Builder b("tiny", 64);
    b.bindStorage(0, ElemType::F32, true);
    b.bindStorage(1, ElemType::F32);
    b.setPushWords(2);
    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto ok = b.ult(i, n);
    b.ifThen(ok, [&] { b.stBuf(1, i, b.ldBuf(0, i)); });
    return b.finish();
}

TEST(Opcodes, TableIsConsistent)
{
    for (uint16_t raw = 0; raw < opCount; ++raw) {
        const OpInfo &info = opInfo(static_cast<Op>(raw));
        ASSERT_NE(info.name, nullptr);
        uint8_t counted = 0;
        for (int i = 0; i < 4; ++i)
            counted += info.kinds[i] != OperandKind::None;
        EXPECT_EQ(counted, info.numOperands) << info.name;
    }
    EXPECT_FALSE(opExists(opCount));
    EXPECT_TRUE(opExists(0));
}

TEST(Opcodes, BuiltinNames)
{
    EXPECT_STREQ(builtinName(Builtin::GlobalIdX), "GlobalIdX");
    EXPECT_STREQ(builtinName(Builtin::LocalLinearId), "LocalLinearId");
    EXPECT_STREQ(builtinName(static_cast<Builtin>(999)), "<bad>");
}

TEST(Module, SerializeDeserializeRoundTrip)
{
    Module m = tinyModule();
    std::vector<uint32_t> words = m.serialize();
    Module back = Module::deserialize(words);
    EXPECT_EQ(back.name, m.name);
    EXPECT_EQ(back.regCount, m.regCount);
    EXPECT_EQ(back.localSize[0], m.localSize[0]);
    EXPECT_EQ(back.pushWords, m.pushWords);
    EXPECT_EQ(back.sharedWords, m.sharedWords);
    ASSERT_EQ(back.bindings.size(), m.bindings.size());
    for (size_t i = 0; i < m.bindings.size(); ++i) {
        EXPECT_EQ(back.bindings[i].binding, m.bindings[i].binding);
        EXPECT_EQ(back.bindings[i].readOnly, m.bindings[i].readOnly);
    }
    EXPECT_EQ(back.code, m.code);
}

TEST(Module, RoundTripPreservesLongNames)
{
    Builder b("a_rather_long_entry_point_name_for_packing", 32);
    b.bindStorage(0, ElemType::I32);
    b.stBuf(0, b.constI(0), b.constI(1));
    Module m = b.finish();
    Module back = Module::deserialize(m.serialize());
    EXPECT_EQ(back.name, m.name);
}

TEST(Module, DecodeCountsInstructions)
{
    Module m = tinyModule();
    EXPECT_EQ(m.decode().size(), m.insnCount());
    EXPECT_GT(m.insnCount(), 4u);
}

TEST(Module, FindBindingAndBound)
{
    Module m = tinyModule();
    EXPECT_NE(m.findBinding(0), nullptr);
    EXPECT_NE(m.findBinding(1), nullptr);
    EXPECT_EQ(m.findBinding(2), nullptr);
    EXPECT_EQ(m.bindingBound(), 2u);
}

TEST(Validator, AcceptsWellFormed)
{
    std::string err;
    EXPECT_TRUE(validate(tinyModule(), &err)) << err;
    EXPECT_TRUE(err.empty());
}

TEST(Validator, RejectsEmptyCode)
{
    Module m = tinyModule();
    m.code.clear();
    std::string err;
    EXPECT_FALSE(validate(m, &err));
    EXPECT_NE(err.find("empty"), std::string::npos);
}

TEST(Validator, RejectsBadRegister)
{
    Module m = tinyModule();
    m.regCount = 1; // far fewer than the code uses
    std::string err;
    EXPECT_FALSE(validate(m, &err));
    EXPECT_NE(err.find("register"), std::string::npos);
}

TEST(Validator, RejectsUndeclaredBinding)
{
    Builder b("bad", 32);
    b.bindStorage(0, ElemType::F32);
    b.stBuf(0, b.constI(0), b.constF(1.0f));
    Module m = b.finish();
    // Forge the binding number in the encoded StBuf.
    for (size_t pos = 0; pos < m.code.size();) {
        uint32_t head = m.code[pos];
        if (static_cast<Op>(head & 0xffff) == Op::StBuf) {
            m.code[pos + 1] = 7;
            break;
        }
        pos += head >> 16;
    }
    std::string err;
    EXPECT_FALSE(validate(m, &err));
    EXPECT_NE(err.find("binding"), std::string::npos);
}

TEST(Validator, RejectsWriteToReadOnlyBinding)
{
    Builder b("ro_write", 32);
    b.bindStorage(0, ElemType::F32, true);
    b.stBuf(0, b.constI(0), b.constF(1.0f));
    std::string err;
    EXPECT_FALSE(validate(b.finish(), &err));
    EXPECT_NE(err.find("read-only"), std::string::npos);
}

TEST(Validator, RejectsSharedAccessWithoutSharedMemory)
{
    Builder b("no_shared", 32);
    b.bindStorage(0, ElemType::F32);
    b.stBuf(0, b.constI(0), b.ldShared(b.constI(0)));
    std::string err;
    EXPECT_FALSE(validate(b.finish(), &err));
    EXPECT_NE(err.find("shared"), std::string::npos);
}

TEST(Validator, RejectsOversizedLocalSize)
{
    Builder b("huge", 2048);
    b.bindStorage(0, ElemType::F32);
    b.stBuf(0, b.constI(0), b.constI(0));
    std::string err;
    EXPECT_FALSE(validate(b.finish(), &err));
    EXPECT_NE(err.find("local size"), std::string::npos);
}

TEST(Validator, RejectsOversizedPushBlock)
{
    Builder b("push", 32);
    b.bindStorage(0, ElemType::F32);
    b.setPushWords(65); // 260 B > 256 B ceiling
    b.stBuf(0, b.constI(0), b.constI(0));
    std::string err;
    EXPECT_FALSE(validate(b.finish(), &err));
    EXPECT_NE(err.find("push"), std::string::npos);
}

TEST(Validator, RejectsLdPushBeyondBlock)
{
    Builder b("pushoob", 32);
    b.bindStorage(0, ElemType::I32);
    b.setPushWords(1);
    b.stBuf(0, b.constI(0), b.ldPush(0));
    Module m = b.finish();
    // Forge the LdPush offset.
    for (size_t pos = 0; pos < m.code.size();) {
        uint32_t head = m.code[pos];
        if (static_cast<Op>(head & 0xffff) == Op::LdPush) {
            m.code[pos + 2] = 5;
            break;
        }
        pos += head >> 16;
    }
    std::string err;
    EXPECT_FALSE(validate(m, &err));
    EXPECT_NE(err.find("push"), std::string::npos);
}

TEST(Validator, RejectsUnknownOpcode)
{
    Module m = tinyModule();
    m.code[0] = (1u << 16) | 0xfffe;
    std::string err;
    EXPECT_FALSE(validate(m, &err));
    EXPECT_NE(err.find("unknown opcode"), std::string::npos);
}

TEST(Validator, RejectsBadLabel)
{
    Builder b("badlabel", 32);
    b.bindStorage(0, ElemType::I32);
    auto l = b.newLabel();
    b.br(l);
    b.place(l);
    b.stBuf(0, b.constI(0), b.constI(0));
    Module m = b.finish();
    // Forge the branch target out of range.
    for (size_t pos = 0; pos < m.code.size();) {
        uint32_t head = m.code[pos];
        if (static_cast<Op>(head & 0xffff) == Op::Br) {
            m.code[pos + 1] = 10000;
            break;
        }
        pos += head >> 16;
    }
    std::string err;
    EXPECT_FALSE(validate(m, &err));
    EXPECT_NE(err.find("label"), std::string::npos);
}

TEST(Builder, LabelsPatchForwardReferences)
{
    Builder b("fwd", 32);
    b.bindStorage(0, ElemType::I32);
    auto skip = b.newLabel();
    auto c = b.constI(1);
    b.brTrue(c, skip);
    b.stBuf(0, b.constI(0), b.constI(42));
    b.place(skip);
    Module m = b.finish();
    std::string err;
    EXPECT_TRUE(validate(m, &err)) << err;
}

TEST(Builder, BuiltinsAreCached)
{
    Builder b("cache", 32);
    b.bindStorage(0, ElemType::I32);
    auto a = b.globalIdX();
    auto c = b.globalIdX();
    EXPECT_EQ(a, c);
    b.stBuf(0, a, c);
    EXPECT_TRUE(validate(b.finish(), nullptr));
}

TEST(Disasm, ContainsOpNamesAndLabels)
{
    Builder b("dis", 32);
    b.bindStorage(0, ElemType::F32, true);
    b.bindStorage(1, ElemType::F32);
    b.setPushWords(1);
    auto i = b.globalIdX();
    auto n = b.ldPush(0);
    auto ok = b.ult(i, n);
    b.ifThen(ok, [&] {
        b.stBuf(1, i, b.ldBuf(0, i, MemFlagPromoteHint));
    });
    std::string text = disassemble(b.finish());
    EXPECT_NE(text.find("module 'dis'"), std::string::npos);
    EXPECT_NE(text.find("LdBuiltin"), std::string::npos);
    EXPECT_NE(text.find("GlobalIdX"), std::string::npos);
    EXPECT_NE(text.find("BrFalse"), std::string::npos);
    EXPECT_NE(text.find("hint=promote"), std::string::npos);
    EXPECT_NE(text.find("readonly"), std::string::npos);
    EXPECT_NE(text.find("L"), std::string::npos);
}

/** Property test: random straight-line modules round-trip exactly. */
TEST(Module, RandomRoundTripProperty)
{
    Rng rng(0xdead);
    for (int trial = 0; trial < 50; ++trial) {
        Builder b(strprintf("rand%d", trial),
                  1u << rng.nextBelow(9));
        b.bindStorage(0, ElemType::F32);
        b.setPushWords(1 + (uint32_t)rng.nextBelow(8));
        std::vector<Builder::Reg> regs;
        regs.push_back(b.constF(rng.nextFloat()));
        regs.push_back(b.constI((int32_t)rng.nextRange(-100, 100)));
        for (int i = 0; i < 30; ++i) {
            auto pick = [&] {
                return regs[rng.nextBelow(regs.size())];
            };
            switch (rng.nextBelow(6)) {
              case 0: regs.push_back(b.fadd(pick(), pick())); break;
              case 1: regs.push_back(b.imul(pick(), pick())); break;
              case 2: regs.push_back(b.fsqrt(pick())); break;
              case 3: regs.push_back(b.select(pick(), pick(), pick()));
                break;
              case 4: regs.push_back(b.ldPush(0)); break;
              default: regs.push_back(b.ult(pick(), pick())); break;
            }
        }
        b.stBuf(0, b.constI(0), regs.back());
        Module m = b.finish();
        std::string err;
        ASSERT_TRUE(validate(m, &err)) << err;
        Module back = Module::deserialize(m.serialize());
        EXPECT_EQ(back.code, m.code);
        EXPECT_EQ(back.regCount, m.regCount);
    }
}

} // namespace
} // namespace vcb::spirv

/** @file The benchmark suite: registry metadata (Table I), workload
 *  determinism, and — the heart of the paper's methodology — output
 *  validation of every benchmark under every API against the CPU
 *  references, at reduced sizes for test speed. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "suite/benchmark.h"
#include "suite/validate.h"

namespace vcb::suite {
namespace {

TEST(SuiteRegistry, TableOneContents)
{
    // The paper's nine Table-I rows in order, then the suite-expansion
    // families.
    const auto &benches = registry();
    ASSERT_EQ(benches.size(), 12u);
    std::vector<std::string> names;
    for (const auto *b : benches)
        names.push_back(b->name());
    std::vector<std::string> expect = {
        "backprop", "bfs",  "cfd",        "gaussian",
        "hotspot",  "lud",  "nn",         "nw",
        "pathfinder", "srad", "kmeans",   "streamcluster"};
    EXPECT_EQ(names, expect);
    for (const auto *b : benches) {
        EXPECT_FALSE(b->fullName().empty()) << b->name();
        EXPECT_FALSE(b->dwarf().empty()) << b->name();
        EXPECT_FALSE(b->domain().empty()) << b->name();
        EXPECT_EQ(b->desktopSizes().size(), 3u) << b->name();
    }
}

TEST(SuiteRegistry, MobileCoverageMatchesPaper)
{
    // Every benchmark now declares two mobile sizes (Fig. 4); whether
    // cfd's actually RUN depends on the device: the paper's hard-cap
    // parts skip it wholesale, UVM parts page it in instead.
    sim::DeviceSpec hard_cap;
    hard_cap.mobile = true;
    hard_cap.unifiedMemory = true;
    sim::DeviceSpec uvm = hard_cap;
    uvm.uvmOversubscription = 64.0;
    for (const auto *b : registry()) {
        EXPECT_EQ(b->mobileSizes().size(), 2u) << b->name();
        // UVM parts run everything.
        EXPECT_TRUE(b->mobileSkipReason(uvm).empty()) << b->name();
        EXPECT_EQ(b->sizesFor(uvm).size(), 2u) << b->name();
        if (b->name() == "cfd") {
            // The paper's skip survives on hard-cap parts.
            EXPECT_TRUE(b->sizesFor(hard_cap).empty());
            EXPECT_NE(b->mobileSkipReason(hard_cap).find("heap"),
                      std::string::npos);
        } else {
            EXPECT_EQ(b->sizesFor(hard_cap).size(), 2u) << b->name();
        }
    }
}

TEST(SuiteRegistry, ByNameFindsEveryBenchmark)
{
    for (const auto *b : registry())
        EXPECT_EQ(&byName(b->name()), b);
}

TEST(SuiteRegistry, WorkloadSeedsAreStableAndDistinct)
{
    SizeConfig a{"x", {64}};
    SizeConfig b{"x", {128}};
    EXPECT_EQ(workloadSeed("bfs", a), workloadSeed("bfs", a));
    EXPECT_NE(workloadSeed("bfs", a), workloadSeed("bfs", b));
    EXPECT_NE(workloadSeed("bfs", a), workloadSeed("nn", a));
}

TEST(Validate, CompareFloats)
{
    EXPECT_TRUE(compareFloats({1.0f, 2.0f}, {1.0f, 2.0f}).empty());
    EXPECT_FALSE(compareFloats({1.0f}, {1.0f, 2.0f}).empty());
    EXPECT_FALSE(compareFloats({1.0f}, {1.1f}).empty());
    // Within relative tolerance.
    EXPECT_TRUE(compareFloats({1.00001f}, {1.0f}, 1e-3).empty());
    // NaN mismatch is reported.
    EXPECT_FALSE(
        compareFloats({std::nanf("")}, {1.0f}).empty());
    EXPECT_TRUE(
        compareFloats({std::nanf("")}, {std::nanf("")}).empty());
}

TEST(Validate, CompareInts)
{
    EXPECT_TRUE(compareInts({1, 2, 3}, {1, 2, 3}).empty());
    EXPECT_NE(compareInts({1, 2, 4}, {1, 2, 3}).find("[2]"),
              std::string::npos);
}

/**
 * Reduced-size configurations used for cross-API validation — small
 * enough that the full (benchmark x API) matrix interprets in seconds.
 * Parameter meanings follow each benchmark's SizeConfig convention.
 */
SizeConfig
smallConfig(const std::string &name)
{
    if (name == "backprop")
        return {"small", {2048}};
    if (name == "bfs")
        return {"small", {4096}};
    if (name == "cfd")
        return {"small", {4096}};
    if (name == "gaussian")
        return {"small", {64}};
    if (name == "hotspot")
        return {"small", {64, 4}};
    if (name == "lud")
        return {"small", {96}};
    if (name == "nn")
        return {"small", {8192}};
    if (name == "nw")
        return {"small", {160}};
    if (name == "pathfinder")
        return {"small", {16, 2048}};
    if (name == "srad")
        return {"small", {32, 2}};
    if (name == "kmeans")
        return {"small", {1024, 4, 5}};
    if (name == "streamcluster")
        return {"small", {1024, 8, 3}};
    ADD_FAILURE() << "unknown benchmark " << name;
    return {"small", {64}};
}

struct MatrixCase
{
    std::string bench;
    sim::Api api;
};

class SuiteValidation : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(SuiteValidation, OutputMatchesCpuReferenceOnGtx)
{
    const MatrixCase &mc = GetParam();
    const Benchmark &bench = byName(mc.bench);
    RunResult r = bench.run(sim::gtx1050ti(), mc.api,
                            smallConfig(mc.bench));
    ASSERT_TRUE(r.ok) << r.skipReason;
    EXPECT_TRUE(r.validated) << r.validationError;
    EXPECT_GT(r.kernelRegionNs, 0.0);
    EXPECT_GE(r.totalNs, r.kernelRegionNs);
    EXPECT_GT(r.launches, 0u);
}

std::vector<MatrixCase>
allMatrixCases()
{
    std::vector<MatrixCase> cases;
    for (const auto *b : registry())
        for (sim::Api api :
             {sim::Api::Vulkan, sim::Api::OpenCl, sim::Api::Cuda})
            cases.push_back({b->name(), api});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllApis, SuiteValidation,
    ::testing::ValuesIn(allMatrixCases()),
    [](const ::testing::TestParamInfo<MatrixCase> &info) {
        return info.param.bench + "_" +
               std::string(sim::apiName(info.param.api));
    });

/** Cross-device validation of one representative benchmark. */
class SuiteDevices : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteDevices, PathfinderValidatesEverywhere)
{
    const sim::DeviceSpec &dev =
        sim::deviceRegistry()[static_cast<size_t>(GetParam())];
    const Benchmark &bench = byName("pathfinder");
    for (sim::Api api : {sim::Api::Vulkan, sim::Api::OpenCl}) {
        RunResult r = bench.run(dev, api, smallConfig("pathfinder"));
        ASSERT_TRUE(r.ok) << dev.name << ": " << r.skipReason;
        EXPECT_TRUE(r.validated)
            << dev.name << ": " << r.validationError;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDevices, SuiteDevices,
                         ::testing::Range(0, 4));

TEST(SuiteDriverFailures, LudOpenClFailsOnSnapdragon)
{
    RunResult r = byName("lud").run(sim::adreno506(), sim::Api::OpenCl,
                                    smallConfig("lud"));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.skipReason.find("driver failure"), std::string::npos);
    // ... while the Vulkan path still works.
    RunResult vk = byName("lud").run(sim::adreno506(), sim::Api::Vulkan,
                                     smallConfig("lud"));
    EXPECT_TRUE(vk.ok) << vk.skipReason;
    EXPECT_TRUE(vk.validated) << vk.validationError;
}

TEST(SuiteDriverFailures, BackpropFailsOnNexusUnderBothApis)
{
    // OpenCL surfaces the build error directly; Vulkan reports the
    // failed pipeline creation (ErrorInitializationFailed).
    RunResult cl = byName("backprop").run(
        sim::powervrG6430(), sim::Api::OpenCl, smallConfig("backprop"));
    EXPECT_FALSE(cl.ok);
    EXPECT_NE(cl.skipReason.find("driver failure"), std::string::npos);
    RunResult vk = byName("backprop").run(
        sim::powervrG6430(), sim::Api::Vulkan, smallConfig("backprop"));
    EXPECT_FALSE(vk.ok);
    EXPECT_NE(vk.skipReason.find("failed"), std::string::npos);
}

TEST(SuiteDriverFailures, CudaUnavailableOffNvidia)
{
    RunResult r = byName("nn").run(sim::rx560(), sim::Api::Cuda,
                                   smallConfig("nn"));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.skipReason.find("CUDA"), std::string::npos);
}

TEST(SuiteDeterminism, SameSeedSameTiming)
{
    const Benchmark &bench = byName("gaussian");
    RunResult a = bench.run(sim::gtx1050ti(), sim::Api::Vulkan,
                            smallConfig("gaussian"));
    RunResult b = bench.run(sim::gtx1050ti(), sim::Api::Vulkan,
                            smallConfig("gaussian"));
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_DOUBLE_EQ(a.kernelRegionNs, b.kernelRegionNs);
    EXPECT_EQ(a.launches, b.launches);
}

TEST(SuiteDeterminism, KmeansConvergesIdenticallyAcrossApis)
{
    // kmeans's launch count encodes its convergence iteration count
    // (one assignment dispatch per iteration plus the transpose); the
    // data decides when the loop stops, so every API must agree, and
    // repeated runs must reproduce it exactly.  The cross-thread-count
    // version of this property lives in test_tools.cc, which can
    // re-launch the process under different VCB_THREADS values.
    SizeConfig cfg = smallConfig("kmeans");
    const Benchmark &bench = byName("kmeans");
    RunResult vk = bench.run(sim::gtx1050ti(), sim::Api::Vulkan, cfg);
    RunResult cl = bench.run(sim::gtx1050ti(), sim::Api::OpenCl, cfg);
    RunResult cu = bench.run(sim::gtx1050ti(), sim::Api::Cuda, cfg);
    ASSERT_TRUE(vk.ok && cl.ok && cu.ok);
    EXPECT_TRUE(vk.validated) << vk.validationError;
    EXPECT_GT(vk.launches, 1u); // converged after >0 iterations
    EXPECT_EQ(vk.launches, cl.launches);
    EXPECT_EQ(vk.launches, cu.launches);

    RunResult again = bench.run(sim::gtx1050ti(), sim::Api::Vulkan, cfg);
    ASSERT_TRUE(again.ok);
    EXPECT_EQ(again.launches, vk.launches);
    EXPECT_DOUBLE_EQ(again.kernelRegionNs, vk.kernelRegionNs);
}

} // namespace
} // namespace vcb::suite

/** @file Unit tests for the common utilities. */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/mathutil.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "common/threadpool.h"

namespace vcb {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextFloatInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
}

TEST(MathUtil, AlignUp)
{
    EXPECT_EQ(alignUp(0, 16), 0u);
    EXPECT_EQ(alignUp(1, 16), 16u);
    EXPECT_EQ(alignUp(16, 16), 16u);
    EXPECT_EQ(alignUp(17, 16), 32u);
}

TEST(MathUtil, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(256));
    EXPECT_FALSE(isPow2(255));
}

TEST(MathUtil, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(MathUtil, MeanStddevMedian)
{
    EXPECT_NEAR(mean({1, 2, 3}), 2.0, 1e-12);
    EXPECT_NEAR(stddev({2, 2, 2}), 0.0, 1e-12);
    EXPECT_NEAR(median({5, 1, 3}), 3.0, 1e-12);
    EXPECT_NEAR(median({4, 1, 3, 2}), 2.5, 1e-12);
}

TEST(StrUtil, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
}

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StrUtil, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(4ull << 20), "4.0 MiB");
}

TEST(StrUtil, FormatNs)
{
    EXPECT_EQ(formatNs(500), "500 ns");
    EXPECT_EQ(formatNs(1500), "1.50 us");
    EXPECT_EQ(formatNs(2.5e6), "2.500 ms");
}

TEST(StrUtil, ParseSize)
{
    EXPECT_EQ(parseSize("123"), 123u);
    EXPECT_EQ(parseSize("4k"), 4096u);
    EXPECT_EQ(parseSize("2M"), 2u << 20);
}

TEST(StrUtil, Padding)
{
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("abcd", 2), "abcd");
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](uint64_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndSmall)
{
    ThreadPool pool(2);
    int count = 0;
    pool.parallelFor(0, [&](uint64_t) { ++count; });
    EXPECT_EQ(count, 0);
    std::atomic<int> c2{0};
    pool.parallelFor(2, [&](uint64_t) { c2.fetch_add(1); });
    EXPECT_EQ(c2.load(), 2);
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<uint64_t> sum{0};
        pool.parallelFor(100, [&](uint64_t i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

} // namespace
} // namespace vcb

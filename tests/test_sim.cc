/** @file Simulator plumbing: device registry, driver profiles, kernel
 *  compilation, the coalescing sampler, the timing model and the
 *  host/queue timelines. */

#include <gtest/gtest.h>

#include "sim/device.h"
#include "sim/kernel.h"
#include "sim/sampler.h"
#include "sim/timeline.h"
#include "sim/timing.h"
#include "spirv/builder.h"

namespace vcb::sim {
namespace {

using spirv::Builder;
using spirv::ElemType;

// --- device registry -----------------------------------------------------

TEST(DeviceRegistry, HasTheFourPaperDevices)
{
    const auto &devices = deviceRegistry();
    ASSERT_EQ(devices.size(), 4u);
    EXPECT_EQ(devices[0].name, "NVIDIA GTX1050Ti");
    EXPECT_EQ(devices[1].name, "AMD RX560");
    EXPECT_FALSE(devices[0].mobile);
    EXPECT_FALSE(devices[1].mobile);
    EXPECT_TRUE(devices[2].mobile);
    EXPECT_TRUE(devices[3].mobile);
}

TEST(DeviceRegistry, ApiAvailabilityMatrix)
{
    // CUDA only on NVIDIA; Vulkan and OpenCL everywhere (Table II/III).
    for (const auto &d : deviceRegistry()) {
        EXPECT_TRUE(d.profile(Api::Vulkan).available) << d.name;
        EXPECT_TRUE(d.profile(Api::OpenCl).available) << d.name;
        EXPECT_EQ(d.profile(Api::Cuda).available, d.vendor == "NVIDIA")
            << d.name;
    }
}

TEST(DeviceRegistry, PushConstantLimitsMatchPaper)
{
    EXPECT_EQ(gtx1050ti().maxPushBytes, 256u);
    EXPECT_EQ(rx560().maxPushBytes, 128u);
    EXPECT_EQ(adreno506().maxPushBytes, 128u);
    EXPECT_EQ(powervrG6430().maxPushBytes, 128u);
}

TEST(DeviceRegistry, PaperDriverFailuresAreModelled)
{
    // Snapdragon: lud OpenCL fails; Nexus: backprop fails on both.
    EXPECT_TRUE(adreno506().profile(Api::OpenCl).kernelBroken(
        "lud_diagonal"));
    EXPECT_FALSE(adreno506().profile(Api::Vulkan).kernelBroken(
        "lud_diagonal"));
    EXPECT_TRUE(powervrG6430().profile(Api::OpenCl).kernelBroken(
        "backprop_layerforward"));
    EXPECT_TRUE(powervrG6430().profile(Api::Vulkan).kernelBroken(
        "backprop_adjust_weights"));
    EXPECT_FALSE(gtx1050ti().profile(Api::Vulkan).kernelBroken(
        "backprop_layerforward"));
}

TEST(DeviceRegistry, CompilerMaturityMatrix)
{
    // Mature CL/CUDA compilers promote; young Vulkan ones do not.
    for (const auto &d : deviceRegistry()) {
        EXPECT_FALSE(d.profile(Api::Vulkan).localMemPromotion) << d.name;
        EXPECT_TRUE(d.profile(Api::OpenCl).localMemPromotion) << d.name;
    }
    EXPECT_TRUE(gtx1050ti().profile(Api::Cuda).localMemPromotion);
}

TEST(DeviceRegistry, LookupByName)
{
    EXPECT_EQ(&deviceByName("rx560"), &rx560());
    EXPECT_EQ(&deviceByName("Adreno"), &adreno506());
    EXPECT_GT(gtx1050ti().lanesPerNs(), 1000.0);
}

TEST(DeviceRegistry, KernelTimeFactors)
{
    const DriverProfile &nexus_vk = powervrG6430().profile(Api::Vulkan);
    EXPECT_GT(nexus_vk.kernelTimeFactor("hotspot_step", true), 1.5);
    EXPECT_DOUBLE_EQ(nexus_vk.kernelTimeFactor("nn_euclid", false), 1.0);
    const DriverProfile &adreno_vk = adreno506().profile(Api::Vulkan);
    EXPECT_GT(adreno_vk.kernelTimeFactor("lud_internal", true), 1.5);
    EXPECT_DOUBLE_EQ(adreno_vk.kernelTimeFactor("nn_euclid", false),
                     1.0);
}

// --- kernel compilation ----------------------------------------------------

spirv::Module
simpleModule(const std::string &name, uint32_t local = 64,
             uint32_t push_words = 0)
{
    Builder b(name, local);
    b.bindStorage(0, ElemType::I32);
    if (push_words)
        b.setPushWords(push_words);
    b.stBuf(0, b.constI(0), b.globalIdX());
    return b.finish();
}

TEST(CompileKernel, SucceedsOnSupportedApi)
{
    std::string err;
    auto k = compileKernel(simpleModule("ok"), gtx1050ti(), Api::Cuda,
                           &err);
    ASSERT_NE(k, nullptr) << err;
    EXPECT_EQ(k->api, Api::Cuda);
    EXPECT_EQ(k->localCount(), 64u);
    EXPECT_EQ(k->numSites, 1u);
}

TEST(CompileKernel, FailsWhenApiUnavailable)
{
    std::string err;
    EXPECT_EQ(compileKernel(simpleModule("x"), rx560(), Api::Cuda, &err),
              nullptr);
    EXPECT_NE(err.find("not available"), std::string::npos);
}

TEST(CompileKernel, FailsOnBrokenKernel)
{
    std::string err;
    EXPECT_EQ(compileKernel(simpleModule("lud_diagonal"), adreno506(),
                            Api::OpenCl, &err),
              nullptr);
    EXPECT_NE(err.find("driver failure"), std::string::npos);
}

TEST(CompileKernel, FailsOnWorkgroupLimit)
{
    std::string err;
    // Mobile parts cap workgroups at 512 invocations.
    EXPECT_EQ(compileKernel(simpleModule("big", 1024), adreno506(),
                            Api::Vulkan, &err),
              nullptr);
    EXPECT_NE(err.find("exceeds device limit"), std::string::npos);
}

TEST(CompileKernel, FailsOnPushLimit)
{
    std::string err;
    // 48 words = 192 B fits the GTX (256 B) but not the RX560 (128 B).
    spirv::Module m = simpleModule("pushy", 64, 48);
    EXPECT_NE(compileKernel(m, gtx1050ti(), Api::Vulkan, &err), nullptr);
    EXPECT_EQ(compileKernel(m, rx560(), Api::Vulkan, &err), nullptr);
    EXPECT_NE(err.find("push"), std::string::npos);
}

TEST(CompileKernel, JitCostOnlyForOpenCl)
{
    std::string err;
    auto cl = compileKernel(simpleModule("k"), gtx1050ti(), Api::OpenCl,
                            &err);
    auto vk = compileKernel(simpleModule("k"), gtx1050ti(), Api::Vulkan,
                            &err);
    auto cu = compileKernel(simpleModule("k"), gtx1050ti(), Api::Cuda,
                            &err);
    ASSERT_TRUE(cl && vk && cu);
    EXPECT_GT(cl->compileNs, 0.0);
    EXPECT_GT(vk->compileNs, 0.0); // pipeline creation
    EXPECT_DOUBLE_EQ(cu->compileNs, 0.0); // offline fat binary
    EXPECT_GT(cl->compileNs, vk->compileNs);
}

// --- sampler -----------------------------------------------------------------

TEST(Sampler, UnitStrideCoalesces)
{
    CoalesceSampler s(1, 32, 64, 64);
    s.beginWorkgroup();
    for (uint32_t lane = 0; lane < 64; ++lane)
        s.record(lane, 0, lane * 4);
    s.endWorkgroup();
    // 2 warps x 2 lines / 64 accesses.
    EXPECT_NEAR(s.ratioFor(0), 4.0 / 64.0, 1e-9);
    EXPECT_TRUE(s.sampled(0));
}

TEST(Sampler, ScatteredAccessesAreUncoalesced)
{
    CoalesceSampler s(1, 32, 64, 32);
    s.beginWorkgroup();
    for (uint32_t lane = 0; lane < 32; ++lane)
        s.record(lane, 0, lane * 4096); // each its own line
    s.endWorkgroup();
    EXPECT_NEAR(s.ratioFor(0), 1.0, 1e-9);
}

TEST(Sampler, OccurrencesGroupSeparately)
{
    CoalesceSampler s(1, 32, 64, 32);
    s.beginWorkgroup();
    // Two occurrences per lane, each occurrence unit-stride.
    for (uint32_t occ = 0; occ < 2; ++occ)
        for (uint32_t lane = 0; lane < 32; ++lane)
            s.record(lane, 0, (occ * 1024 + lane) * 4);
    s.endWorkgroup();
    EXPECT_NEAR(s.ratioFor(0), 4.0 / 64.0, 1e-9);
}

TEST(Sampler, UnsampledSiteFallsBackToUncoalesced)
{
    CoalesceSampler s(2, 32, 64, 32);
    EXPECT_FALSE(s.sampled(1));
    EXPECT_DOUBLE_EQ(s.ratioFor(1), 1.0);
}

// --- timing model -------------------------------------------------------------

TEST(TimingModel, MemoryBoundKernelScalesWithBytes)
{
    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto k = compileKernel(simpleModule("t"), dev, Api::Vulkan, &err);
    ASSERT_TRUE(k);
    DispatchStats a, b;
    a.dramAccesses = 1 << 20;
    a.dramTransactions = double(a.dramAccesses) / 16.0;
    b = a;
    b.dramAccesses *= 2;
    b.dramTransactions *= 2;
    double ta = TimingModel::kernelExecNs(dev, *k, a);
    double tb = TimingModel::kernelExecNs(dev, *k, b);
    EXPECT_NEAR(tb / ta, 2.0, 1e-6);
}

TEST(TimingModel, ComputeBoundKernelIgnoresSmallTraffic)
{
    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto k = compileKernel(simpleModule("t"), dev, Api::Vulkan, &err);
    ASSERT_TRUE(k);
    DispatchStats s;
    s.laneCycles = 1ull << 30;
    s.dramAccesses = 16;
    s.dramTransactions = 1;
    double t = TimingModel::kernelExecNs(dev, *k, s);
    EXPECT_NEAR(t, double(s.laneCycles) / dev.lanesPerNs(), t * 0.01);
}

TEST(TimingModel, TransferMatchesLinkBandwidth)
{
    // 12 MB over a 12 GB/s link = 1 ms.
    EXPECT_NEAR(TimingModel::transferNs(gtx1050ti(), 12u << 20),
                (12u << 20) / 12.0, 1.0);
}

// --- timeline -----------------------------------------------------------------

TEST(Timeline, HostAdvanceAccumulates)
{
    Timeline t(1);
    t.hostAdvance(100);
    t.hostAdvance(50);
    EXPECT_DOUBLE_EQ(t.hostNow(), 150.0);
}

TEST(Timeline, EnqueueAheadPipelines)
{
    // Device-bound: host enqueues 10 x 10ns of work instantly; total
    // device time dominates.
    Timeline t(1);
    for (int i = 0; i < 10; ++i) {
        t.hostAdvance(1);
        t.enqueue(0, 10);
    }
    EXPECT_DOUBLE_EQ(t.queueReady(0), 1 + 10 * 10);
    t.hostWaitQueue(0, 5);
    EXPECT_DOUBLE_EQ(t.hostNow(), 101 + 5);
}

TEST(Timeline, HostBoundWhenEnqueueSlowerThanDevice)
{
    Timeline t(1);
    for (int i = 0; i < 10; ++i) {
        t.hostAdvance(20); // slow host
        t.enqueue(0, 5);   // quick kernels
    }
    // Each kernel starts when enqueued; completion tracks the host.
    EXPECT_DOUBLE_EQ(t.queueReady(0), 10 * 20 + 5);
}

TEST(Timeline, BlockingLoopSerialises)
{
    // The multi-kernel method: launch, wait, repeat.
    Timeline t(1);
    for (int i = 0; i < 4; ++i) {
        t.hostAdvance(6);      // launch overhead
        double end = t.enqueue(0, 30);
        t.hostWaitUntil(end, 14); // sync wakeup
    }
    EXPECT_DOUBLE_EQ(t.hostNow(), 4 * (6 + 30 + 14));
}

TEST(Timeline, QueuesRunIndependently)
{
    Timeline t(2);
    t.enqueue(0, 100);
    t.enqueue(1, 40);
    EXPECT_DOUBLE_EQ(t.queueReady(0), 100.0);
    EXPECT_DOUBLE_EQ(t.queueReady(1), 40.0);
    t.hostWaitAll(0);
    EXPECT_DOUBLE_EQ(t.hostNow(), 100.0);
}

TEST(Timeline, QueueWaitUntilModelsSemaphores)
{
    Timeline t(2);
    double producer_done = t.enqueue(0, 100);
    t.queueWaitUntil(1, producer_done);
    double consumer_done = t.enqueue(1, 10);
    EXPECT_DOUBLE_EQ(consumer_done, 110.0);
}

} // namespace
} // namespace vcb::sim

/** @file Reporting and figure-aggregation utilities. */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/figures.h"
#include "harness/report.h"

namespace vcb::harness {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name    value"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t({"a", "b"});
    t.addRow({"x,y", "quote\"inside"});
    std::string csv = t.csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(BarChart, ScalesToMaximum)
{
    std::string chart = barChart({{"half", 2.0}, {"full", 4.0}}, "x", 10);
    // The max bar has 10 hashes, the half bar 5.
    EXPECT_NE(chart.find("full |##########"), std::string::npos);
    EXPECT_NE(chart.find("half |#####"), std::string::npos);
}

TEST(BarChart, HandlesEmptyAndZero)
{
    EXPECT_EQ(barChart({}, "x"), "");
    std::string z = barChart({{"zero", 0.0}}, "u");
    EXPECT_NE(z.find("zero"), std::string::npos);
}

TEST(FmtF, Precision)
{
    EXPECT_EQ(fmtF(1.2345, 2), "1.23");
    EXPECT_EQ(fmtF(1.0, 0), "1");
}

SpeedupRow
makeRow(const std::string &bench, double cl, double vk, double cu)
{
    SpeedupRow row;
    row.bench = bench;
    row.sizeLabel = "s";
    int icl = static_cast<int>(sim::Api::OpenCl);
    int ivk = static_cast<int>(sim::Api::Vulkan);
    int icu = static_cast<int>(sim::Api::Cuda);
    if (cl > 0) {
        row.ok[icl] = true;
        row.ns[icl] = cl;
        row.validated[icl] = true;
    }
    if (vk > 0) {
        row.ok[ivk] = true;
        row.ns[ivk] = vk;
        row.validated[ivk] = true;
    }
    if (cu > 0) {
        row.ok[icu] = true;
        row.ns[icu] = cu;
        row.validated[icu] = true;
    }
    return row;
}

TEST(SpeedupRow, RatioVsOpenClBaseline)
{
    SpeedupRow row = makeRow("x", 200, 100, 400);
    EXPECT_DOUBLE_EQ(row.speedupVsOpenCl(sim::Api::Vulkan), 2.0);
    EXPECT_DOUBLE_EQ(row.speedupVsOpenCl(sim::Api::Cuda), 0.5);
    EXPECT_DOUBLE_EQ(row.speedupVsOpenCl(sim::Api::OpenCl), 1.0);
}

TEST(SpeedupRow, MissingSidesYieldZero)
{
    SpeedupRow row = makeRow("x", 0, 100, 0);
    EXPECT_DOUBLE_EQ(row.speedupVsOpenCl(sim::Api::Vulkan), 0.0);
}

TEST(FigureData, GeomeansSkipMissingRows)
{
    FigureData fig;
    fig.dev = &sim::gtx1050ti();
    fig.rows.push_back(makeRow("a", 400, 100, 200)); // vk 4x, cuda 2x
    fig.rows.push_back(makeRow("b", 100, 100, 100)); // vk 1x
    fig.rows.push_back(makeRow("c", 0, 100, 0));     // skipped
    EXPECT_NEAR(fig.geomeanVsOpenCl(sim::Api::Vulkan), 2.0, 1e-9);
    EXPECT_NEAR(fig.geomeanVulkanVsCuda(), std::sqrt(2.0), 1e-9);
    EXPECT_TRUE(fig.allValidated());
}

TEST(FigureData, UnvalidatedRunsAreFlagged)
{
    FigureData fig;
    fig.dev = &sim::gtx1050ti();
    SpeedupRow row = makeRow("a", 100, 100, 0);
    row.validated[static_cast<int>(sim::Api::Vulkan)] = false;
    fig.rows.push_back(row);
    EXPECT_FALSE(fig.allValidated());
}

TEST(FigureData, FormatIncludesGeomeanAndNotes)
{
    FigureData fig;
    fig.dev = &sim::gtx1050ti();
    fig.rows.push_back(makeRow("bench1", 300, 100, 150));
    SpeedupRow skip = makeRow("bench2", 100, 0, 0);
    skip.skip[static_cast<int>(sim::Api::Vulkan)] = "driver failure: x";
    fig.rows.push_back(skip);
    std::string out = formatSpeedupFigure(fig);
    EXPECT_NE(out.find("geomean Vulkan vs OpenCL"), std::string::npos);
    EXPECT_NE(out.find("bench1"), std::string::npos);
    EXPECT_NE(out.find("driver failure"), std::string::npos);
    EXPECT_NE(out.find("3.00"), std::string::npos);
}

} // namespace
} // namespace vcb::harness

/** @file Reporting, figure-aggregation and report-book utilities. */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/figures.h"
#include "harness/report.h"
#include "harness/report_book.h"

namespace vcb::harness {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name    value"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t({"a", "b"});
    t.addRow({"x,y", "quote\"inside"});
    std::string csv = t.csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(BarChart, ScalesToMaximum)
{
    std::string chart = barChart({{"half", 2.0}, {"full", 4.0}}, "x", 10);
    // The max bar has 10 hashes, the half bar 5.
    EXPECT_NE(chart.find("full |##########"), std::string::npos);
    EXPECT_NE(chart.find("half |#####"), std::string::npos);
}

TEST(BarChart, HandlesEmptyAndZero)
{
    EXPECT_EQ(barChart({}, "x"), "");
    std::string z = barChart({{"zero", 0.0}}, "u");
    EXPECT_NE(z.find("zero"), std::string::npos);
}

TEST(FmtF, Precision)
{
    EXPECT_EQ(fmtF(1.2345, 2), "1.23");
    EXPECT_EQ(fmtF(1.0, 0), "1");
}

SpeedupRow
makeRow(const std::string &bench, double cl, double vk, double cu)
{
    SpeedupRow row;
    row.bench = bench;
    row.sizeLabel = "s";
    int icl = static_cast<int>(sim::Api::OpenCl);
    int ivk = static_cast<int>(sim::Api::Vulkan);
    int icu = static_cast<int>(sim::Api::Cuda);
    if (cl > 0) {
        row.ok[icl] = true;
        row.ns[icl] = cl;
        row.validated[icl] = true;
    }
    if (vk > 0) {
        row.ok[ivk] = true;
        row.ns[ivk] = vk;
        row.validated[ivk] = true;
    }
    if (cu > 0) {
        row.ok[icu] = true;
        row.ns[icu] = cu;
        row.validated[icu] = true;
    }
    return row;
}

TEST(SpeedupRow, RatioVsOpenClBaseline)
{
    SpeedupRow row = makeRow("x", 200, 100, 400);
    EXPECT_DOUBLE_EQ(row.speedupVsOpenCl(sim::Api::Vulkan), 2.0);
    EXPECT_DOUBLE_EQ(row.speedupVsOpenCl(sim::Api::Cuda), 0.5);
    EXPECT_DOUBLE_EQ(row.speedupVsOpenCl(sim::Api::OpenCl), 1.0);
}

TEST(SpeedupRow, MissingSidesYieldZero)
{
    SpeedupRow row = makeRow("x", 0, 100, 0);
    EXPECT_DOUBLE_EQ(row.speedupVsOpenCl(sim::Api::Vulkan), 0.0);
}

TEST(FigureData, GeomeansSkipMissingRows)
{
    FigureData fig;
    fig.dev = &sim::gtx1050ti();
    fig.rows.push_back(makeRow("a", 400, 100, 200)); // vk 4x, cuda 2x
    fig.rows.push_back(makeRow("b", 100, 100, 100)); // vk 1x
    fig.rows.push_back(makeRow("c", 0, 100, 0));     // skipped
    EXPECT_NEAR(fig.geomeanVsOpenCl(sim::Api::Vulkan), 2.0, 1e-9);
    EXPECT_NEAR(fig.geomeanVulkanVsCuda(), std::sqrt(2.0), 1e-9);
    EXPECT_TRUE(fig.allValidated());
}

TEST(FigureData, UnvalidatedRunsAreFlagged)
{
    FigureData fig;
    fig.dev = &sim::gtx1050ti();
    SpeedupRow row = makeRow("a", 100, 100, 0);
    row.validated[static_cast<int>(sim::Api::Vulkan)] = false;
    fig.rows.push_back(row);
    EXPECT_FALSE(fig.allValidated());
}

TEST(FigureData, FormatIncludesGeomeanAndNotes)
{
    FigureData fig;
    fig.dev = &sim::gtx1050ti();
    fig.rows.push_back(makeRow("bench1", 300, 100, 150));
    SpeedupRow skip = makeRow("bench2", 100, 0, 0);
    skip.skip[static_cast<int>(sim::Api::Vulkan)] = "driver failure: x";
    fig.rows.push_back(skip);
    std::string out = formatSpeedupFigure(fig);
    EXPECT_NE(out.find("geomean Vulkan vs OpenCL"), std::string::npos);
    EXPECT_NE(out.find("bench1"), std::string::npos);
    EXPECT_NE(out.find("driver failure"), std::string::npos);
    EXPECT_NE(out.find("3.00"), std::string::npos);
}

TEST(ScaleConfig, ShrinksTowardFloorNeverInflates)
{
    suite::SizeConfig size{"s", {4096, 16, 64}};
    suite::SizeConfig scaled = scaleConfig(size, 64);
    EXPECT_EQ(scaled.params[0], 64u); // 4096 / 64
    EXPECT_EQ(scaled.params[1], 16u); // small param passes through
    EXPECT_EQ(scaled.params[2], 32u); // floored at min(p, 32)
    suite::SizeConfig same = scaleConfig(size, 1);
    EXPECT_EQ(same.params, size.params);
}

TEST(ReportBook, DeviceSlugIsFilesystemSafe)
{
    EXPECT_EQ(deviceSlug("NVIDIA GTX1050Ti"), "nvidia-gtx1050ti");
    EXPECT_EQ(deviceSlug("Imagination PowerVR Rogue G6430"),
              "imagination-powervr-rogue-g6430");
    EXPECT_EQ(deviceSlug("   "), "device");
}

TEST(ReportBook, SelectDevicesSplitsByClass)
{
    const auto &devices = sim::activeDeviceRegistry();
    auto desktop = selectDevices(devices, false);
    auto mobile = selectDevices(devices, true);
    EXPECT_EQ(desktop.size() + mobile.size(), devices.size());
    for (const sim::DeviceSpec *d : desktop)
        EXPECT_FALSE(d->mobile);
    for (const sim::DeviceSpec *d : mobile)
        EXPECT_TRUE(d->mobile);
}

TEST(ReportBook, Tab1ListsEveryRegistryBenchmark)
{
    std::string tab1 = renderTab1Section();
    for (const suite::Benchmark *b : suite::registry())
        EXPECT_NE(tab1.find(b->name()), std::string::npos)
            << b->name();
    EXPECT_NE(tab1.find("re-record"), std::string::npos);
}

TEST(ReportBook, Tab23ListsDevicesWithDashForMissingApis)
{
    std::string tabs =
        renderTab23Section(sim::activeDeviceRegistry());
    EXPECT_NE(tabs.find("TABLE II"), std::string::npos);
    EXPECT_NE(tabs.find("TABLE III"), std::string::npos);
    EXPECT_NE(tabs.find("NVIDIA GTX1050Ti"), std::string::npos);
    EXPECT_NE(tabs.find("CUDA 8.0"), std::string::npos);
    // AMD/mobile rows carry "-" in the CUDA column.
    EXPECT_NE(tabs.find("-"), std::string::npos);
}

TEST(ReportBook, BandwidthSectionIsDeterministic)
{
    BandwidthPanel p1 = runBandwidthPanel(sim::gtx1050ti(), true);
    BandwidthPanel p2 = runBandwidthPanel(sim::gtx1050ti(), true);
    std::string s1 = renderBandwidthSection({p1}, false, true);
    std::string s2 = renderBandwidthSection({p2}, false, true);
    // Simulated clocks only: a rerun renders byte-identically, which
    // is what lets CI regenerate docs/RESULTS.md and diff it.
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1.find("Fig. 1: NVIDIA GTX1050Ti"), std::string::npos);
    EXPECT_NE(s1.find("unit stride:"), std::string::npos);
}

TEST(ReportBook, SpeedupSectionAnnotatesWholesaleMobileSkips)
{
    // Wholesale skips are per-device now (a UVM part pages and runs
    // what a hard-cap part cannot): planning a hard-cap mobile figure
    // records cfd's skip, and the renderer prints it with the device
    // name and the paper's reason.
    std::vector<FigureCell> cells;
    FigureData fig =
        planSpeedupFigure(sim::adreno506(), true, 1, cells);
    ASSERT_EQ(fig.wholesaleSkips.size(), 1u);
    EXPECT_EQ(fig.wholesaleSkips[0].first, "cfd");
    std::string section = renderSpeedupSection({fig}, true, 16);
    EXPECT_NE(
        section.find("skipped wholesale on Qualcomm Adreno 506: cfd"),
        std::string::npos);
    EXPECT_NE(section.find("paper anchors"), std::string::npos);

    // A UVM part records no wholesale skip: cfd pages instead.
    sim::DeviceSpec uvm = sim::adreno506();
    uvm.name = "UVM Adreno";
    uvm.uvmOversubscription = 64.0;
    std::vector<FigureCell> uvm_cells;
    FigureData uvm_fig = planSpeedupFigure(uvm, true, 1, uvm_cells);
    EXPECT_TRUE(uvm_fig.wholesaleSkips.empty());
    EXPECT_GT(uvm_cells.size(), cells.size());
}

} // namespace
} // namespace vcb::harness

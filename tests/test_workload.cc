/** @file The workload-program layer: every benchmark's declarative
 *  host program through all three shared runners, launch-count
 *  determinism across repeats / APIs / strategies, and bit-identical
 *  outputs across every applicable Vulkan submission strategy. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "suite/benchmark.h"
#include "suite/workload.h"

namespace vcb::suite {
namespace {

/** Reduced-size configurations (same conventions as test_suite.cc's
 *  matrix) so the benchmark x runner x strategy sweep runs in
 *  seconds. */
SizeConfig
smallConfig(const std::string &name)
{
    if (name == "backprop")
        return {"small", {2048}};
    if (name == "bfs")
        return {"small", {4096}};
    if (name == "cfd")
        return {"small", {4096}};
    if (name == "gaussian")
        return {"small", {64}};
    if (name == "hotspot")
        return {"small", {64, 4}};
    if (name == "lud")
        return {"small", {96}};
    if (name == "nn")
        return {"small", {8192}};
    if (name == "nw")
        return {"small", {160}};
    if (name == "pathfinder")
        return {"small", {16, 2048}};
    if (name == "srad")
        return {"small", {32, 2}};
    if (name == "kmeans")
        return {"small", {1024, 4, 5}};
    if (name == "streamcluster")
        return {"small", {1024, 8, 3}};
    ADD_FAILURE() << "unknown benchmark " << name;
    return {"small", {64}};
}

class WorkloadRunners : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRunners, AllThreeRunnersValidate)
{
    const Benchmark &bench = byName(GetParam());
    Workload w = bench.workload(smallConfig(GetParam()));
    const sim::DeviceSpec &dev = sim::gtx1050ti();

    RunResult vk = runWorkloadVulkan(w, dev);
    RunResult cl = runWorkloadOcl(w, dev);
    RunResult cu = runWorkloadCuda(w, dev);
    for (const RunResult *r : {&vk, &cl, &cu}) {
        ASSERT_TRUE(r->ok) << r->skipReason;
        EXPECT_TRUE(r->validated) << r->validationError;
        EXPECT_GT(r->kernelRegionNs, 0.0);
        EXPECT_GE(r->totalNs, r->kernelRegionNs);
        EXPECT_GT(r->launches, 0u);
    }
    // One program, one launch count: the paper's cross-API comparison
    // only isolates the programming model if all three runners issue
    // identical work.
    EXPECT_EQ(vk.launches, cl.launches);
    EXPECT_EQ(vk.launches, cu.launches);
    EXPECT_EQ(vk.strategy, strategyName(w.preferred));
    EXPECT_EQ(cl.strategy, "per-launch");
}

TEST_P(WorkloadRunners, RepeatRunsAreDeterministic)
{
    const Benchmark &bench = byName(GetParam());
    Workload w = bench.workload(smallConfig(GetParam()));
    const sim::DeviceSpec &dev = sim::gtx1050ti();

    HostArrays host_a, host_b;
    RunResult a = runWorkloadVulkan(w, dev, {}, &host_a);
    RunResult b = runWorkloadVulkan(w, dev, {}, &host_b);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.launches, b.launches);
    EXPECT_DOUBLE_EQ(a.kernelRegionNs, b.kernelRegionNs);
    EXPECT_EQ(host_a, host_b);
}

TEST_P(WorkloadRunners, StrategiesProduceBitIdenticalOutputs)
{
    const Benchmark &bench = byName(GetParam());
    Workload w = bench.workload(smallConfig(GetParam()));
    const sim::DeviceSpec &dev = sim::gtx1050ti();

    std::vector<SubmitStrategy> strategies = applicableStrategies(w);
    ASSERT_FALSE(strategies.empty());
    EXPECT_TRUE(strategyApplicable(w, w.preferred));

    HostArrays baseline;
    RunResult base;
    for (size_t i = 0; i < strategies.size(); ++i) {
        WorkloadOptions opts;
        opts.strategy = strategies[i];
        HostArrays host;
        RunResult r = runWorkloadVulkan(w, dev, opts, &host);
        ASSERT_TRUE(r.ok) << r.skipReason;
        EXPECT_TRUE(r.validated)
            << strategyName(strategies[i]) << ": "
            << r.validationError;
        if (i == 0) {
            baseline = std::move(host);
            base = r;
            continue;
        }
        // The strategy moves submissions around; it must never move
        // bits or launches.
        EXPECT_EQ(host, baseline) << strategyName(strategies[i]);
        EXPECT_EQ(r.launches, base.launches)
            << strategyName(strategies[i]);
    }
}

std::vector<std::string>
allBenchmarkNames()
{
    std::vector<std::string> names;
    for (const Benchmark *b : registry())
        names.push_back(b->name());
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadRunners,
                         ::testing::ValuesIn(allBenchmarkNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadStrategies, AtLeastEightBenchmarksAreSweepable)
{
    // The tentpole's acceptance bar: the submission strategy is a
    // measured axis, not an accident of driver code — at least 8 of
    // the 12 benchmarks admit two or more strategies.
    std::map<std::string, size_t> counts;
    for (const Benchmark *b : registry()) {
        Workload w = b->workload(smallConfig(b->name()));
        counts[b->name()] = applicableStrategies(w).size();
    }
    size_t sweepable = 0;
    for (const auto &[name, n] : counts)
        if (n >= 2)
            ++sweepable;
    EXPECT_GE(sweepable, 8u) << "sweepable benchmarks regressed";
    // srad and streamcluster are inherently re-record (host-computed
    // push values / per-round candidates with mid-loop readbacks).
    EXPECT_EQ(counts["srad"], 1u);
    EXPECT_EQ(counts["streamcluster"], 1u);
}

TEST(WorkloadStrategies, ApplicabilityMatchesProgramShape)
{
    auto w_of = [&](const char *name) {
        return byName(name).workload(smallConfig(name));
    };
    // Uniform converge loops: record-once + re-record, never batched
    // (the host reads a flag/counter every iteration).
    for (const char *name : {"bfs", "kmeans"}) {
        Workload w = w_of(name);
        EXPECT_TRUE(strategyApplicable(w, SubmitStrategy::RecordOnce))
            << name;
        EXPECT_FALSE(strategyApplicable(w, SubmitStrategy::Batched))
            << name;
        EXPECT_EQ(w.preferred, SubmitStrategy::RecordOnce) << name;
    }
    // Statically-varying pure-device loops: batched + re-record, not
    // record-once (pushes/bindings move per iteration).
    for (const char *name :
         {"gaussian", "hotspot", "lud", "nw", "pathfinder"}) {
        Workload w = w_of(name);
        EXPECT_FALSE(strategyApplicable(w, SubmitStrategy::RecordOnce))
            << name;
        EXPECT_TRUE(strategyApplicable(w, SubmitStrategy::Batched))
            << name;
        EXPECT_EQ(w.preferred, SubmitStrategy::Batched) << name;
    }
    // A uniform pure-device body admits everything.
    Workload cfd = w_of("cfd");
    EXPECT_EQ(applicableStrategies(cfd).size(), 3u);
    // Host-resolved pushes pin srad to re-record.
    Workload srad = w_of("srad");
    EXPECT_FALSE(strategyApplicable(srad, SubmitStrategy::RecordOnce));
    EXPECT_FALSE(strategyApplicable(srad, SubmitStrategy::Batched));
}

TEST(WorkloadStrategies, BatchSizeDoesNotChangeResults)
{
    // batched-N: submitting every N iterations instead of one mega
    // buffer moves fence waits, not bits.
    const Benchmark &bench = byName("hotspot");
    Workload w = bench.workload(smallConfig("hotspot"));
    const sim::DeviceSpec &dev = sim::gtx1050ti();

    HostArrays all_in_one, per_two;
    WorkloadOptions a, b;
    a.strategy = SubmitStrategy::Batched; // batchN = 0: all iterations
    b.strategy = SubmitStrategy::Batched;
    b.batchN = 2;
    RunResult ra = runWorkloadVulkan(w, dev, a, &all_in_one);
    RunResult rb = runWorkloadVulkan(w, dev, b, &per_two);
    ASSERT_TRUE(ra.ok && rb.ok);
    EXPECT_TRUE(ra.validated && rb.validated);
    EXPECT_EQ(all_in_one, per_two);
    EXPECT_EQ(ra.launches, rb.launches);
    // More submissions cost more on the simulated host clock.
    EXPECT_GT(rb.kernelRegionNs, ra.kernelRegionNs);
}

TEST(WorkloadStrategies, StrategyTagReflectsOverride)
{
    const Benchmark &bench = byName("cfd");
    Workload w = bench.workload(smallConfig("cfd"));
    WorkloadOptions opts;
    opts.strategy = SubmitStrategy::RecordOnce;
    RunResult r = runWorkloadVulkan(w, sim::gtx1050ti(), opts);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.strategy, "record-once");
}

// ---------------------------------------------------------------------------
// Multi-queue DAG scheduling
// ---------------------------------------------------------------------------

/** The dag benchmarks and the strategies the multi-queue path
 *  accepts (Batched is excluded by design). */
const char *const kDagBenches[] = {"nn", "kmeans"};
const SubmitStrategy kMultiQueueStrategies[] = {
    SubmitStrategy::RecordOnce, SubmitStrategy::ReRecord};

TEST(WorkloadMultiQueue, QueueCountsProduceBitIdenticalOutputs)
{
    // Spreading a dag's dispatch chains over 1/2/4 queues moves only
    // the simulated timeline; outputs, launches and the convergence
    // trajectory must match the serial single-queue path bit for bit.
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    for (const char *name : kDagBenches) {
        Workload w = byName(name).workload(smallConfig(name));
        ASSERT_TRUE(w.dag) << name;
        for (SubmitStrategy strat : kMultiQueueStrategies) {
            WorkloadOptions serial;
            serial.strategy = strat;
            HostArrays baseline;
            RunResult base =
                runWorkloadVulkan(w, dev, serial, &baseline);
            ASSERT_TRUE(base.ok) << base.skipReason;
            EXPECT_EQ(base.queuesUsed, 1u);
            for (uint32_t q : {1u, 2u, 4u}) {
                WorkloadOptions opts;
                opts.strategy = strat;
                opts.queueCount = q;
                HostArrays host;
                RunResult r = runWorkloadVulkan(w, dev, opts, &host);
                ASSERT_TRUE(r.ok) << r.skipReason;
                EXPECT_TRUE(r.validated)
                    << name << " q=" << q << ": " << r.validationError;
                EXPECT_EQ(host, baseline) << name << " q=" << q;
                EXPECT_EQ(r.launches, base.launches)
                    << name << " q=" << q;
                EXPECT_EQ(r.queuesUsed, q);
            }
        }
    }
}

TEST(WorkloadMultiQueue, FourQueuesOverlapOnDagWorkloads)
{
    // The acceptance gate: on a device with >= 4 compute queues, a
    // dag-parallel workload's kernel region is strictly shorter on 4
    // queues than on 1, and the summed busy time exceeds the elapsed
    // region (the signature of genuine overlap, not bookkeeping).
    // Paper-sized inputs: overlap needs per-chunk kernel time to
    // dominate the per-submit overhead, which the seconds-scale test
    // configs are deliberately too small for.
    const std::map<std::string, SizeConfig> cfg = {
        {"nn", {"overlap", {2097152}}},
        {"kmeans", {"overlap", {65536, 4, 5}}},
    };
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    for (const char *name : kDagBenches) {
        Workload w = byName(name).workload(cfg.at(name));
        WorkloadOptions one, four;
        one.strategy = four.strategy = SubmitStrategy::ReRecord;
        one.queueCount = 1;
        four.queueCount = 4;
        RunResult r1 = runWorkloadVulkan(w, dev, one);
        RunResult r4 = runWorkloadVulkan(w, dev, four);
        ASSERT_TRUE(r1.ok && r4.ok);
        EXPECT_LT(r4.kernelRegionNs, r1.kernelRegionNs) << name;
        // Serial execution cannot be busier than elapsed.
        EXPECT_LE(r1.deviceBusyNs,
                  r1.kernelRegionNs * (1.0 + 1e-9))
            << name;
        // busy > elapsed holds only where device work dominates the
        // region: nn is compute-bound, kmeans spends its region on
        // per-iteration transfers and host centroid updates.
        if (std::string(name) == "nn")
            EXPECT_GT(r4.deviceBusyNs, r4.kernelRegionNs) << name;
    }
}

TEST(WorkloadMultiQueue, QueueCountClampsToDeviceLimit)
{
    // A mobile part with a single compute queue accepts the
    // multi-queue request but degenerates to the 1-queue schedule.
    const sim::DeviceSpec &dev = sim::adreno506();
    Workload w = byName("nn").workload(smallConfig("nn"));
    WorkloadOptions opts;
    opts.strategy = SubmitStrategy::ReRecord;
    opts.queueCount = 4;
    HostArrays host4, host1;
    RunResult r4 = runWorkloadVulkan(w, dev, opts, &host4);
    opts.queueCount = 1;
    RunResult r1 = runWorkloadVulkan(w, dev, opts, &host1);
    ASSERT_TRUE(r4.ok && r1.ok);
    EXPECT_EQ(r4.queuesUsed, 1u);
    EXPECT_DOUBLE_EQ(r4.kernelRegionNs, r1.kernelRegionNs);
    EXPECT_EQ(host4, host1);
}

TEST(WorkloadSkips, DriverFailuresSurfaceAsSkips)
{
    // The shared runners preserve the per-driver failure modelling the
    // hand-written drivers exposed (paper Sec. V-B2).
    Workload lud = byName("lud").workload(smallConfig("lud"));
    RunResult cl = runWorkloadOcl(lud, sim::adreno506());
    EXPECT_FALSE(cl.ok);
    EXPECT_NE(cl.skipReason.find("driver failure"), std::string::npos);

    Workload nn = byName("nn").workload(smallConfig("nn"));
    RunResult cu = runWorkloadCuda(nn, sim::rx560());
    EXPECT_FALSE(cu.ok);
    EXPECT_NE(cu.skipReason.find("CUDA"), std::string::npos);
}

} // namespace
} // namespace vcb::suite

/** @file OpenCL-mini and CUDA-mini runtimes: device discovery, JIT
 *  builds, argument binding, enqueue semantics, events and transfers. */

#include <gtest/gtest.h>

#include "common/mathutil.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"

namespace vcb {
namespace {

// --- OpenCL -----------------------------------------------------------------

TEST(Ocl, AllDevicesExposeOpenCl)
{
    EXPECT_EQ(ocl::getDevices().size(), 4u);
}

TEST(Ocl, BuildChargesHostTime)
{
    ocl::Context ctx(sim::gtx1050ti());
    double before = ctx.hostNowNs();
    auto prog = ocl::createProgramWithSource(ctx, kernels::buildVecAdd());
    std::string err;
    ASSERT_TRUE(ocl::buildProgram(prog, &err)) << err;
    EXPECT_GT(ctx.hostNowNs(), before); // JIT cost landed on the host
}

TEST(Ocl, BrokenDriverKernelFailsToBuild)
{
    ocl::Context ctx(sim::adreno506());
    auto prog = ocl::createProgramWithSource(
        ctx, kernels::buildLudDiagonal());
    std::string err;
    EXPECT_FALSE(ocl::buildProgram(prog, &err));
    EXPECT_NE(err.find("driver failure"), std::string::npos);
}

TEST(Ocl, KernelNameMustMatch)
{
    ocl::Context ctx(sim::gtx1050ti());
    auto prog = ocl::createProgramWithSource(ctx, kernels::buildVecAdd());
    std::string err;
    ASSERT_TRUE(ocl::buildProgram(prog, &err));
    EXPECT_FALSE(ocl::createKernel(prog, "wrongName", &err).valid());
    EXPECT_NE(err.find("no kernel"), std::string::npos);
    EXPECT_TRUE(ocl::createKernel(prog, "vectorAdd", &err).valid());
}

TEST(Ocl, VectorAddEndToEnd)
{
    ocl::Context ctx(sim::rx560());
    auto prog = ocl::createProgramWithSource(ctx, kernels::buildVecAdd());
    std::string err;
    ASSERT_TRUE(ocl::buildProgram(prog, &err)) << err;
    auto k = ocl::createKernel(prog, "vectorAdd", &err);
    ASSERT_TRUE(k.valid());

    const uint32_t n = 1024;
    auto bx = ocl::createBuffer(ctx, ocl::MemReadOnly, n * 4);
    auto by = ocl::createBuffer(ctx, ocl::MemReadOnly, n * 4);
    auto bz = ocl::createBuffer(ctx, ocl::MemWriteOnly, n * 4);
    std::vector<float> x(n), y(n), z(n);
    for (uint32_t i = 0; i < n; ++i) {
        x[i] = 0.5f * i;
        y[i] = 100.0f - i;
    }
    ocl::enqueueWriteBuffer(ctx, bx, true, 0, n * 4, x.data());
    ocl::enqueueWriteBuffer(ctx, by, true, 0, n * 4, y.data());
    ocl::setKernelArgBuffer(k, 0, bx);
    ocl::setKernelArgBuffer(k, 1, by);
    ocl::setKernelArgBuffer(k, 2, bz);
    ocl::setKernelArgScalar(k, 0, n);
    ocl::enqueueNDRangeKernel(ctx, k, n);
    ocl::enqueueReadBuffer(ctx, bz, true, 0, n * 4, z.data());
    for (uint32_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(z[i], x[i] + y[i]) << i;
}

TEST(Ocl, EventsExposeDeviceWindows)
{
    ocl::Context ctx(sim::gtx1050ti());
    auto prog = ocl::createProgramWithSource(ctx, kernels::buildVecAdd());
    std::string err;
    ASSERT_TRUE(ocl::buildProgram(prog, &err));
    auto k = ocl::createKernel(prog, "vectorAdd", &err);
    const uint32_t n = 4096;
    auto bx = ocl::createBuffer(ctx, ocl::MemReadWrite, n * 4);
    ocl::setKernelArgBuffer(k, 0, bx);
    ocl::setKernelArgBuffer(k, 1, bx);
    ocl::setKernelArgBuffer(k, 2, bx);
    ocl::setKernelArgScalar(k, 0, n);

    ocl::Event e1 = ocl::enqueueNDRangeKernel(ctx, k, n);
    ocl::Event e2 = ocl::enqueueNDRangeKernel(ctx, k, n);
    ctx.finish();
    EXPECT_LT(e1.queuedNs(), e1.endNs());
    EXPECT_LT(e1.startNs(), e1.endNs());
    // In-order queue: the second launch starts after the first ends.
    EXPECT_GE(e2.startNs(), e1.endNs());
    EXPECT_GE(ctx.hostNowNs(), e2.endNs()); // finish blocked the host
}

TEST(Ocl, EnqueueAheadPipelinesAgainstBlockingLoop)
{
    const uint32_t n = 256; // tiny kernels: overhead dominates
    auto run = [&](bool blocking) {
        ocl::Context ctx(sim::gtx1050ti());
        auto prog = ocl::createProgramWithSource(ctx,
                                                 kernels::buildVecAdd());
        std::string err;
        if (!ocl::buildProgram(prog, &err))
            ADD_FAILURE() << err;
        auto k = ocl::createKernel(prog, "vectorAdd", &err);
        auto buf = ocl::createBuffer(ctx, ocl::MemReadWrite, n * 4);
        ocl::setKernelArgBuffer(k, 0, buf);
        ocl::setKernelArgBuffer(k, 1, buf);
        ocl::setKernelArgBuffer(k, 2, buf);
        ocl::setKernelArgScalar(k, 0, n);
        double t0 = ctx.hostNowNs();
        for (int i = 0; i < 16; ++i) {
            ocl::enqueueNDRangeKernel(ctx, k, n);
            if (blocking)
                ctx.finish();
        }
        ctx.finish();
        return ctx.hostNowNs() - t0;
    };
    EXPECT_LT(run(false), run(true) * 0.7);
}

// --- CUDA -----------------------------------------------------------------------

TEST(Cuda, OnlyOnNvidia)
{
    EXPECT_TRUE(cuda::available(sim::gtx1050ti()));
    EXPECT_FALSE(cuda::available(sim::rx560()));
    EXPECT_FALSE(cuda::available(sim::adreno506()));
    EXPECT_FALSE(cuda::available(sim::powervrG6430()));
}

TEST(Cuda, MemcpyRoundTrip)
{
    cuda::Runtime rt(sim::gtx1050ti());
    auto d = rt.malloc(1024);
    std::vector<uint32_t> in(256), out(256);
    for (uint32_t i = 0; i < 256; ++i)
        in[i] = i * 3 + 1;
    rt.memcpyHtoD(d, in.data(), 1024);
    rt.memcpyDtoH(out.data(), d, 1024);
    EXPECT_EQ(in, out);
}

TEST(Cuda, VectorAddEndToEnd)
{
    cuda::Runtime rt(sim::gtx1050ti());
    auto f = rt.loadFunction(kernels::buildVecAdd());
    const uint32_t n = 2048;
    auto dx = rt.malloc(n * 4);
    auto dy = rt.malloc(n * 4);
    auto dz = rt.malloc(n * 4);
    std::vector<float> x(n), y(n), z(n);
    for (uint32_t i = 0; i < n; ++i) {
        x[i] = i * 0.25f;
        y[i] = 7.0f;
    }
    rt.memcpyHtoD(dx, x.data(), n * 4);
    rt.memcpyHtoD(dy, y.data(), n * 4);
    rt.launchKernel(f, (uint32_t)ceilDiv(n, 256), 1, 1, {dx, dy, dz},
                    {n});
    rt.deviceSynchronize();
    rt.memcpyDtoH(z.data(), dz, n * 4);
    for (uint32_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(z[i], x[i] + 7.0f) << i;
}

TEST(Cuda, MemsetFillsWords)
{
    cuda::Runtime rt(sim::gtx1050ti());
    auto d = rt.malloc(64);
    rt.memset(d, 0xdeadbeef, 64);
    std::vector<uint32_t> out(16);
    rt.memcpyDtoH(out.data(), d, 64);
    for (uint32_t v : out)
        EXPECT_EQ(v, 0xdeadbeefu);
}

TEST(Cuda, EventsBracketStreamWork)
{
    cuda::Runtime rt(sim::gtx1050ti());
    auto f = rt.loadFunction(kernels::buildVecAdd());
    const uint32_t n = 65536;
    auto d = rt.malloc(n * 4);
    double e1 = rt.eventRecordNs();
    rt.launchKernel(f, n / 256, 1, 1, {d, d, d}, {n});
    double e2 = rt.eventRecordNs();
    rt.streamSynchronize();
    EXPECT_GT(e2, e1);
    // A bigger grid takes longer device time.
    double e3 = rt.eventRecordNs();
    for (int i = 0; i < 4; ++i)
        rt.launchKernel(f, n / 256, 1, 1, {d, d, d}, {n});
    double e4 = rt.eventRecordNs();
    rt.streamSynchronize();
    EXPECT_GT(e4 - e3, (e2 - e1) * 2.0);
}

TEST(Cuda, StreamsOverlapIndependentWork)
{
    cuda::Runtime rt2(sim::gtx1050ti(), 2);
    auto f = rt2.loadFunction(kernels::buildVecAdd());
    const uint32_t n = 1u << 20;
    auto a = rt2.malloc(n * 4);
    auto b = rt2.malloc(n * 4);
    double t0 = rt2.hostNowNs();
    rt2.launchKernel(f, n / 256, 1, 1, {a, a, a}, {n}, 0);
    rt2.launchKernel(f, n / 256, 1, 1, {b, b, b}, {n}, 1);
    rt2.deviceSynchronize();
    double overlapped = rt2.hostNowNs() - t0;

    cuda::Runtime rt1(sim::gtx1050ti(), 1);
    auto f1 = rt1.loadFunction(kernels::buildVecAdd());
    auto c = rt1.malloc(n * 4);
    auto d = rt1.malloc(n * 4);
    double t1 = rt1.hostNowNs();
    rt1.launchKernel(f1, n / 256, 1, 1, {c, c, c}, {n}, 0);
    rt1.launchKernel(f1, n / 256, 1, 1, {d, d, d}, {n}, 0);
    rt1.deviceSynchronize();
    double serial = rt1.hostNowNs() - t1;
    EXPECT_LT(overlapped, serial * 0.75);
}

} // namespace
} // namespace vcb

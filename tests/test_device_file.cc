/**
 * @file
 * Device spec-file tests: serialize -> parse -> compare round trips of
 * every compiled-in device, byte-equality of the committed `.dev`
 * files under devices/ with the registry (VCB_DEVICES_DIR, set by
 * CTest), directory loading, and positional rejection of malformed,
 * unknown-key and out-of-range spec files.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "sim/device.h"
#include "sim/device_file.h"

namespace vcb::sim {
namespace {

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Error-path helper: parse must fail and mention every fragment. */
void
expectParseError(const std::string &text,
                 const std::vector<std::string> &fragments)
{
    std::string err;
    auto parsed = parseDevice(text, &err);
    ASSERT_FALSE(parsed.has_value())
        << "expected parse failure for:\n"
        << text;
    for (const std::string &fragment : fragments)
        EXPECT_NE(err.find(fragment), std::string::npos)
            << "error '" << err << "' lacks '" << fragment << "'";
}

TEST(DeviceFile, RoundTripsEveryBuiltin)
{
    for (const DeviceSpec &dev : deviceRegistry()) {
        std::string text = serializeDevice(dev);
        std::string err;
        auto parsed = parseDevice(text, &err);
        ASSERT_TRUE(parsed.has_value()) << dev.name << ": " << err;
        // Canonical-form fixpoint: a parse reproduces every field the
        // serializer writes, bit-exact doubles included.
        EXPECT_EQ(serializeDevice(*parsed), text) << dev.name;
    }
}

TEST(DeviceFile, RoundTripPreservesFields)
{
    auto parsed = parseDevice(serializeDevice(gtx1050ti()));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->name, "NVIDIA GTX1050Ti");
    EXPECT_EQ(parsed->computeUnits, 6u);
    EXPECT_EQ(parsed->clockGhz, 1.39); // bit-exact, not approximate
    EXPECT_EQ(parsed->deviceHeapBytes, 4ull << 30);
    const DriverProfile &vk =
        parsed->apis[static_cast<int>(Api::Vulkan)];
    EXPECT_EQ(vk.memEfficiency, 0.849);
    EXPECT_EQ(vk.txEfficiency, 1.06);
    EXPECT_FALSE(vk.localMemPromotion);
    // Unavailable profiles serialize as one line and parse back to
    // defaults (rx560 has no CUDA).
    auto rx = parseDevice(serializeDevice(rx560()));
    ASSERT_TRUE(rx.has_value());
    EXPECT_FALSE(rx->apis[static_cast<int>(Api::Cuda)].available);

    auto pvr = parseDevice(serializeDevice(powervrG6430()));
    ASSERT_TRUE(pvr.has_value());
    const DriverProfile &pvk =
        pvr->apis[static_cast<int>(Api::Vulkan)];
    ASSERT_EQ(pvk.kernelTimeDerates.size(), 1u);
    EXPECT_EQ(pvk.kernelTimeDerates[0].first, "hotspot");
    EXPECT_EQ(pvk.kernelTimeDerates[0].second, 2.2);
    ASSERT_EQ(pvk.brokenKernels.size(), 1u);
    EXPECT_EQ(pvk.brokenKernels[0], "backprop");

    auto adreno = parseDevice(serializeDevice(adreno506()));
    ASSERT_TRUE(adreno.has_value());
    const DriverProfile &avk =
        adreno->apis[static_cast<int>(Api::Vulkan)];
    EXPECT_TRUE(avk.pushConstantsAsBufferBind);
    EXPECT_EQ(avk.sharedKernelTimeDerate, 2.0);
    const DriverProfile &acl =
        adreno->apis[static_cast<int>(Api::OpenCl)];
    ASSERT_EQ(acl.brokenKernels.size(), 1u);
    EXPECT_EQ(acl.brokenKernels[0], "lud");
}

TEST(DeviceFile, CommittedSpecsMatchBuiltins)
{
    const char *dir = std::getenv("VCB_DEVICES_DIR");
    if (!dir)
        GTEST_SKIP() << "VCB_DEVICES_DIR not set";
    const std::pair<const char *, const DeviceSpec &> parts[] = {
        {"gtx1050ti", gtx1050ti()},
        {"rx560", rx560()},
        {"adreno506", adreno506()},
        {"powervr_g6430", powervrG6430()},
    };
    for (const auto &[stem, dev] : parts) {
        std::string path = std::string(dir) + "/" + stem + ".dev";
        // Byte equality: the committed paper specs ARE the registry,
        // so figures from files cannot drift from the binaries.
        EXPECT_EQ(readAll(path), serializeDevice(dev)) << path;
    }
}

TEST(DeviceFile, LoadsSpecDirectoryWithExpansionDevices)
{
    const char *dir = std::getenv("VCB_DEVICES_DIR");
    if (!dir)
        GTEST_SKIP() << "VCB_DEVICES_DIR not set";
    std::vector<DeviceSpec> devices = loadDeviceDir(dir);
    EXPECT_GE(devices.size(), 6u);

    size_t mobile = 0;
    bool mali = false, adreno640 = false;
    for (size_t i = 0; i < devices.size(); ++i) {
        mobile += devices[i].mobile ? 1 : 0;
        for (size_t j = i + 1; j < devices.size(); ++j)
            EXPECT_NE(devices[i].name, devices[j].name);
        if (devices[i].name == "Arm Mali-G76")
            mali = true;
        if (devices[i].name == "Qualcomm Adreno 640")
            adreno640 = true;
    }
    EXPECT_GE(mobile, 4u);
    EXPECT_TRUE(mali) << "expansion device Mali-G76 missing";
    EXPECT_TRUE(adreno640) << "expansion device Adreno 640 missing";

    // The expansion parts expose Vulkan + OpenCL, never CUDA, and
    // dropped the paper-era Snapdragon push-constant quirk.
    for (const DeviceSpec &d : devices) {
        if (d.name != "Arm Mali-G76" &&
            d.name != "Qualcomm Adreno 640")
            continue;
        EXPECT_TRUE(d.mobile) << d.name;
        EXPECT_TRUE(d.profile(Api::Vulkan).available) << d.name;
        EXPECT_TRUE(d.profile(Api::OpenCl).available) << d.name;
        EXPECT_FALSE(d.profile(Api::Cuda).available) << d.name;
        EXPECT_FALSE(d.profile(Api::Vulkan).pushConstantsAsBufferBind)
            << d.name;
    }
}

TEST(DeviceFile, MinimalSpecParsesToDefaults)
{
    auto parsed = parseDevice("name = Tiny\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->name, "Tiny");
    EXPECT_EQ(parsed->computeUnits, 1u);
    EXPECT_FALSE(parsed->apis[0].available);
    // Canonical-form fixpoint holds for defaults too.
    std::string text = serializeDevice(*parsed);
    auto again = parseDevice(text);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(serializeDevice(*again), text);
}

TEST(DeviceFile, CommentsAndBlankLinesAreIgnored)
{
    auto parsed = parseDevice("# a comment\n\n"
                              "name = X\n"
                              "   # indented comment\n"
                              "compute_units = 3\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->computeUnits, 3u);
}

TEST(DeviceFile, RejectsMissingEquals)
{
    expectParseError("name = X\ncompute_units\n",
                     {"line 2", "key = value"});
}

TEST(DeviceFile, RejectsUnknownDeviceKey)
{
    expectParseError("name = X\nfrobnicate = 1\n",
                     {"line 2", "unknown device key 'frobnicate'"});
}

TEST(DeviceFile, RejectsDriverKeyInPreamble)
{
    expectParseError("name = X\ncode_quality = 1\n",
                     {"line 2", "unknown device key 'code_quality'"});
}

TEST(DeviceFile, RejectsUnknownDriverKey)
{
    expectParseError("name = X\n[vulkan]\nwibble = 1\n",
                     {"line 3", "unknown driver key 'wibble'",
                      "[vulkan]"});
}

TEST(DeviceFile, RejectsUnknownSection)
{
    expectParseError("name = X\n[metal]\n",
                     {"line 2", "unknown section"});
}

TEST(DeviceFile, RejectsDuplicateSection)
{
    expectParseError("name = X\n[vulkan]\navailable = true\n[vulkan]\n",
                     {"line 4", "duplicate section"});
}

TEST(DeviceFile, RejectsDuplicateKey)
{
    expectParseError("name = X\nname = Y\n",
                     {"line 2", "duplicate key 'name'"});
}

TEST(DeviceFile, RejectsBadBool)
{
    expectParseError("name = X\nmobile = maybe\n",
                     {"line 2", "true or false"});
}

TEST(DeviceFile, RejectsBadInteger)
{
    expectParseError("name = X\ncompute_units = twelve\n",
                     {"line 2", "unsigned integer"});
    expectParseError("name = X\ncompute_units = -3\n",
                     {"line 2", "unsigned integer"});
}

TEST(DeviceFile, RejectsOutOfRangeValues)
{
    expectParseError("name = X\ncompute_units = 0\n",
                     {"line 2", "'compute_units' out of range"});
    expectParseError("name = X\nclock_ghz = 0\n",
                     {"line 2", "'clock_ghz' out of range"});
    expectParseError("name = X\n[vulkan]\nmem_efficiency = 1.5\n",
                     {"line 3", "'mem_efficiency' out of range"});
    expectParseError("name = X\n[opencl]\ncode_quality = -1\n",
                     {"line 3", "'code_quality' out of range"});
}

TEST(DeviceFile, RejectsNonFiniteDouble)
{
    expectParseError("name = X\nclock_ghz = nan\n",
                     {"line 2", "finite"});
}

TEST(DeviceFile, RejectsMalformedDerates)
{
    expectParseError("name = X\n[vulkan]\nkernel_time_derates = "
                     "hotspot\n",
                     {"line 3", "name:factor"});
    expectParseError("name = X\n[vulkan]\nkernel_time_derates = "
                     "hotspot:-1\n",
                     {"line 3", "positive"});
}

TEST(DeviceFile, RejectsEmptyBrokenKernelEntry)
{
    expectParseError("name = X\n[vulkan]\nbroken_kernels = lud,,bfs\n",
                     {"line 3", "empty entry"});
}

TEST(DeviceFile, RejectsMissingName)
{
    expectParseError("mobile = true\n",
                     {"missing required key 'name'"});
}

// ---------------------------------------------------------------------------
// UVM paging fields (unified-memory parts only)
// ---------------------------------------------------------------------------

TEST(DeviceFileUvm, RandomizedUvmSpecsRoundTripBitExactly)
{
    const uint64_t seed =
        std::getenv("VCB_PROPERTY_SEED")
            ? std::strtoull(std::getenv("VCB_PROPERTY_SEED"), nullptr,
                            10)
            : 42;
    Rng rng(seed);
    for (int trial = 0; trial < 64; ++trial) {
        DeviceSpec d = adreno506(); // unified-memory builtin
        d.name = "Fuzz UVM " + std::to_string(trial);
        // Random values across each field's full accepted range.
        d.uvmOversubscription = 1.0 + rng.nextFloat(0.0f, 255.0f);
        d.uvmPageBytes =
            256 + (uint32_t)rng.nextBelow((1u << 24) - 255);
        d.uvmMigrationNsPerPage = rng.nextFloat(0.0f, 1e9f);
        d.uvmFaultLatencyNs = rng.nextFloat(0.0f, 1e9f);
        d.uvmOversubBwDerate = rng.nextFloat(0.001f, 1.0f);

        std::string text = serializeDevice(d);
        std::string err;
        auto parsed = parseDevice(text, &err);
        ASSERT_TRUE(parsed.has_value())
            << "seed " << seed << " trial " << trial << ": " << err;
        // Bit-exact field round trip, canonical-form fixpoint, and a
        // matching fingerprint (the compile cache keys on it).
        EXPECT_EQ(parsed->uvmOversubscription, d.uvmOversubscription)
            << trial;
        EXPECT_EQ(parsed->uvmPageBytes, d.uvmPageBytes) << trial;
        EXPECT_EQ(parsed->uvmMigrationNsPerPage,
                  d.uvmMigrationNsPerPage)
            << trial;
        EXPECT_EQ(parsed->uvmFaultLatencyNs, d.uvmFaultLatencyNs)
            << trial;
        EXPECT_EQ(parsed->uvmOversubBwDerate, d.uvmOversubBwDerate)
            << trial;
        EXPECT_EQ(serializeDevice(*parsed), text) << trial;
        EXPECT_EQ(hashDevice(*parsed), hashDevice(d)) << trial;
    }
}

TEST(DeviceFileUvm, RejectsUvmKeysWithoutUnifiedMemory)
{
    // Default (unified_memory absent = false): positional, at the
    // offending key's line.
    expectParseError(
        "name = X\nuvm_page_bytes = 65536\n",
        {"line 2", "'uvm_page_bytes' requires unified_memory = true"});
    // Explicit false AFTER the UVM key: the check runs at end of
    // parse, but the error still points at the key's own line.
    expectParseError("name = X\nuvm_oversubscription = 4\n"
                     "unified_memory = false\n",
                     {"line 2", "'uvm_oversubscription' requires "
                                "unified_memory = true"});
    // On a unified part the same text parses.
    auto ok = parseDevice("name = X\nuvm_oversubscription = 4\n"
                          "unified_memory = true\n");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->uvmOversubscription, 4.0);
    EXPECT_TRUE(ok->uvmPagingEnabled());
}

TEST(DeviceFileUvm, RejectsOutOfRangeUvmValues)
{
    expectParseError("name = X\nunified_memory = true\n"
                     "uvm_oversubscription = 0.5\n",
                     {"line 3", "'uvm_oversubscription' out of range"});
    expectParseError("name = X\nunified_memory = true\n"
                     "uvm_oversubscription = 300\n",
                     {"line 3", "'uvm_oversubscription' out of range"});
    expectParseError("name = X\nunified_memory = true\n"
                     "uvm_page_bytes = 64\n",
                     {"line 3", "'uvm_page_bytes' out of range"});
    // The derate's minimum is strict: 0 would stall the DRAM model.
    expectParseError("name = X\nunified_memory = true\n"
                     "uvm_oversub_bw_derate = 0\n",
                     {"line 3",
                      "'uvm_oversub_bw_derate' out of range"});
}

TEST(DeviceFileUvm, SerializerEmitsUvmFieldsOnlyOnUnifiedParts)
{
    // Hard-cap desktop: no uvm_ lines at all (the fields are inert).
    EXPECT_EQ(serializeDevice(gtx1050ti()).find("uvm_"),
              std::string::npos);
    // Unified part: all five fields, even at defaults (canonical
    // form), so the committed adreno506/powervr specs carry them.
    std::string text = serializeDevice(adreno506());
    for (const char *key :
         {"uvm_oversubscription", "uvm_page_bytes",
          "uvm_migration_ns_per_page", "uvm_fault_latency_ns",
          "uvm_oversub_bw_derate"})
        EXPECT_NE(text.find(key), std::string::npos) << key;
}

} // namespace
} // namespace vcb::sim

/** @file Property test: random straight-line kernels executed by the
 *  interpreter must match a host-side oracle that applies the same
 *  operation semantics to the same register history — bit-exactly,
 *  including float edge cases (inf, denormals, NaN propagation). */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/rng.h"
#include "sim/engine.h"
#include "sim/kernel.h"
#include "spirv/builder.h"

namespace vcb::sim {
namespace {

using spirv::Builder;
using spirv::ElemType;

float
f(uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

uint32_t
u(float v)
{
    return std::bit_cast<uint32_t>(v);
}

int32_t
s(uint32_t bits)
{
    return static_cast<int32_t>(bits);
}

/** One random program: builder ops mirrored by host evaluation. */
void
runTrial(uint64_t seed)
{
    Rng rng(seed);
    Builder b("prop", 1);
    b.bindStorage(0, ElemType::U32);

    std::vector<Builder::Reg> regs;
    std::vector<uint32_t> host;
    std::vector<int> kinds;
    int current_kind = -1;

    auto push = [&](Builder::Reg r, uint32_t value) {
        regs.push_back(r);
        host.push_back(value);
        kinds.push_back(current_kind);
    };

    // Seed values: mixed magnitudes, a negative, a denormal-ish bit
    // pattern and a plain integer.
    float f1 = rng.nextFloat(-100.0f, 100.0f);
    float f2 = rng.nextFloat(0.001f, 8.0f);
    int32_t i1 = static_cast<int32_t>(rng.nextRange(-1000, 1000));
    uint32_t raw = static_cast<uint32_t>(rng.next());
    push(b.constF(f1), u(f1));
    push(b.constF(f2), u(f2));
    push(b.constI(i1), static_cast<uint32_t>(i1));
    push(b.constU(raw), raw);

    auto pick = [&]() -> size_t { return rng.nextBelow(regs.size()); };

    // NaN payload bits may differ between the interpreter's and this
    // file's translation units (inlined SSE vs libm code paths), and
    // integer ops would then diverge on those bits — so NaN-producing
    // values are terminal: emitted but never consumed downstream.
    auto push_unless_nan = [&](Builder::Reg r, uint32_t value) {
        if (!std::isnan(f(value)))
            push(r, value);
    };
    // fmin/fmax of (+0, -0) may return either zero (IEEE 754 allows
    // both, and translation units lower the call differently), so zero
    // results of min/max are terminal too.
    auto push_minmax = [&](Builder::Reg r, uint32_t value) {
        if (!std::isnan(f(value)) && (value << 1) != 0)
            push(r, value);
    };

    for (int op = 0; op < 60; ++op) {
        size_t ia = pick(), ib = pick(), ic = pick();
        uint32_t a = host[ia], c = host[ib], d = host[ic];
        uint64_t choice = rng.nextBelow(20);
        current_kind = (int)choice;
        switch (choice) {
          case 0:
            push_unless_nan(b.fadd(regs[ia], regs[ib]), u(f(a) + f(c)));
            break;
          case 1:
            push_unless_nan(b.fsub(regs[ia], regs[ib]), u(f(a) - f(c)));
            break;
          case 2:
            push_unless_nan(b.fmul(regs[ia], regs[ib]), u(f(a) * f(c)));
            break;
          case 3:
            push_unless_nan(b.fdiv(regs[ia], regs[ib]), u(f(a) / f(c)));
            break;
          case 4:
            push_minmax(b.fmin(regs[ia], regs[ib]),
                        u(std::fmin(f(a), f(c))));
            break;
          case 5:
            push_minmax(b.fmax(regs[ia], regs[ib]),
                        u(std::fmax(f(a), f(c))));
            break;
          case 6:
            push_unless_nan(b.fabs(regs[ia]), u(std::fabs(f(a))));
            break;
          case 7:
            push_unless_nan(b.fsqrt(regs[ia]), u(std::sqrt(f(a))));
            break;
          case 8:
            push_unless_nan(b.ffma(regs[ia], regs[ib], regs[ic]),
                            u(std::fma(f(a), f(c), f(d))));
            break;
          case 9:
            push_unless_nan(b.ffloor(regs[ia]), u(std::floor(f(a))));
            break;
          case 10:
            push(b.iadd(regs[ia], regs[ib]), a + c);
            break;
          case 11:
            push(b.isub(regs[ia], regs[ib]), a - c);
            break;
          case 12:
            push(b.imul(regs[ia], regs[ib]), a * c);
            break;
          case 13:
            push(b.iand(regs[ia], regs[ib]), a & c);
            break;
          case 14:
            push(b.ixor(regs[ia], regs[ib]), a ^ c);
            break;
          case 15:
            push(b.ishl(regs[ia], regs[ib]), a << (c & 31));
            break;
          case 16:
            push(b.ishru(regs[ia], regs[ib]), a >> (c & 31));
            break;
          case 17:
            push(b.ilt(regs[ia], regs[ib]),
                 s(a) < s(c) ? 1u : 0u);
            break;
          case 18:
            push(b.select(regs[ia], regs[ib], regs[ic]),
                 a ? c : d);
            break;
          default:
            push(b.cvtSF(regs[ia]),
                 u(static_cast<float>(s(a))));
            break;
        }
    }

    // Store every register and compare against the oracle.
    for (size_t i = 0; i < regs.size(); ++i)
        b.stBuf(0, b.constI(static_cast<int32_t>(i)), regs[i]);
    spirv::Module m = b.finish();

    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto kernel = compileKernel(m, dev, Api::Vulkan, &err);
    ASSERT_NE(kernel, nullptr) << err;

    std::vector<uint32_t> buf(regs.size(), 0);
    DispatchContext ctx;
    ctx.kernel = kernel.get();
    ctx.buffers.push_back({buf.data(), buf.size()});
    ExecutionEngine engine(dev);
    engine.dispatch(ctx);

    for (size_t i = 0; i < regs.size(); ++i) {
        // NaN payloads may legitimately differ between libm calls that
        // both return NaN; everything else must match bit-exactly.
        bool both_nan = std::isnan(f(buf[i])) && std::isnan(f(host[i]));
        if (!both_nan)
            ASSERT_EQ(buf[i], host[i])
                << "trial " << seed << " reg " << i << " kind "
                << kinds[i];
    }
}

class InterpreterOracle : public ::testing::TestWithParam<int>
{
};

TEST_P(InterpreterOracle, RandomProgramMatchesHostEvaluation)
{
    // Each parameter seeds 8 random programs.
    for (int sub = 0; sub < 8; ++sub)
        runTrial(static_cast<uint64_t>(GetParam()) * 8 + sub);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpreterOracle,
                         ::testing::Range(0, 12));

} // namespace
} // namespace vcb::sim

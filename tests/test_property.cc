/** @file Property test: random straight-line kernels executed by the
 *  interpreter must match a host-side oracle that applies the same
 *  operation semantics to the same register history — bit-exactly,
 *  including float edge cases (inf, denormals, NaN propagation). */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "serve/serve.h"
#include "sim/engine.h"
#include "sim/kernel.h"
#include "sim/uvm.h"
#include "spirv/builder.h"

namespace vcb::sim {
namespace {

using spirv::Builder;
using spirv::ElemType;

float
f(uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

uint32_t
u(float v)
{
    return std::bit_cast<uint32_t>(v);
}

int32_t
s(uint32_t bits)
{
    return static_cast<int32_t>(bits);
}

/** One random program: builder ops mirrored by host evaluation. */
void
runTrial(uint64_t seed)
{
    Rng rng(seed);
    Builder b("prop", 1);
    b.bindStorage(0, ElemType::U32);

    std::vector<Builder::Reg> regs;
    std::vector<uint32_t> host;
    std::vector<int> kinds;
    int current_kind = -1;

    auto push = [&](Builder::Reg r, uint32_t value) {
        regs.push_back(r);
        host.push_back(value);
        kinds.push_back(current_kind);
    };

    // Seed values: mixed magnitudes, a negative, a denormal-ish bit
    // pattern and a plain integer.
    float f1 = rng.nextFloat(-100.0f, 100.0f);
    float f2 = rng.nextFloat(0.001f, 8.0f);
    int32_t i1 = static_cast<int32_t>(rng.nextRange(-1000, 1000));
    uint32_t raw = static_cast<uint32_t>(rng.next());
    push(b.constF(f1), u(f1));
    push(b.constF(f2), u(f2));
    push(b.constI(i1), static_cast<uint32_t>(i1));
    push(b.constU(raw), raw);

    auto pick = [&]() -> size_t { return rng.nextBelow(regs.size()); };

    // NaN payload bits may differ between the interpreter's and this
    // file's translation units (inlined SSE vs libm code paths), and
    // integer ops would then diverge on those bits — so NaN-producing
    // values are terminal: emitted but never consumed downstream.
    auto push_unless_nan = [&](Builder::Reg r, uint32_t value) {
        if (!std::isnan(f(value)))
            push(r, value);
    };
    // fmin/fmax of (+0, -0) may return either zero (IEEE 754 allows
    // both, and translation units lower the call differently), so zero
    // results of min/max are terminal too.
    auto push_minmax = [&](Builder::Reg r, uint32_t value) {
        if (!std::isnan(f(value)) && (value << 1) != 0)
            push(r, value);
    };

    for (int op = 0; op < 60; ++op) {
        size_t ia = pick(), ib = pick(), ic = pick();
        uint32_t a = host[ia], c = host[ib], d = host[ic];
        uint64_t choice = rng.nextBelow(20);
        current_kind = (int)choice;
        switch (choice) {
          case 0:
            push_unless_nan(b.fadd(regs[ia], regs[ib]), u(f(a) + f(c)));
            break;
          case 1:
            push_unless_nan(b.fsub(regs[ia], regs[ib]), u(f(a) - f(c)));
            break;
          case 2:
            push_unless_nan(b.fmul(regs[ia], regs[ib]), u(f(a) * f(c)));
            break;
          case 3:
            push_unless_nan(b.fdiv(regs[ia], regs[ib]), u(f(a) / f(c)));
            break;
          case 4:
            push_minmax(b.fmin(regs[ia], regs[ib]),
                        u(std::fmin(f(a), f(c))));
            break;
          case 5:
            push_minmax(b.fmax(regs[ia], regs[ib]),
                        u(std::fmax(f(a), f(c))));
            break;
          case 6:
            push_unless_nan(b.fabs(regs[ia]), u(std::fabs(f(a))));
            break;
          case 7:
            push_unless_nan(b.fsqrt(regs[ia]), u(std::sqrt(f(a))));
            break;
          case 8:
            push_unless_nan(b.ffma(regs[ia], regs[ib], regs[ic]),
                            u(std::fma(f(a), f(c), f(d))));
            break;
          case 9:
            push_unless_nan(b.ffloor(regs[ia]), u(std::floor(f(a))));
            break;
          case 10:
            push(b.iadd(regs[ia], regs[ib]), a + c);
            break;
          case 11:
            push(b.isub(regs[ia], regs[ib]), a - c);
            break;
          case 12:
            push(b.imul(regs[ia], regs[ib]), a * c);
            break;
          case 13:
            push(b.iand(regs[ia], regs[ib]), a & c);
            break;
          case 14:
            push(b.ixor(regs[ia], regs[ib]), a ^ c);
            break;
          case 15:
            push(b.ishl(regs[ia], regs[ib]), a << (c & 31));
            break;
          case 16:
            push(b.ishru(regs[ia], regs[ib]), a >> (c & 31));
            break;
          case 17:
            push(b.ilt(regs[ia], regs[ib]),
                 s(a) < s(c) ? 1u : 0u);
            break;
          case 18:
            push(b.select(regs[ia], regs[ib], regs[ic]),
                 a ? c : d);
            break;
          default:
            push(b.cvtSF(regs[ia]),
                 u(static_cast<float>(s(a))));
            break;
        }
    }

    // Store every register and compare against the oracle.
    for (size_t i = 0; i < regs.size(); ++i)
        b.stBuf(0, b.constI(static_cast<int32_t>(i)), regs[i]);
    spirv::Module m = b.finish();

    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto kernel = compileKernel(m, dev, Api::Vulkan, &err);
    ASSERT_NE(kernel, nullptr) << err;

    std::vector<uint32_t> buf(regs.size(), 0);
    DispatchContext ctx;
    ctx.kernel = kernel.get();
    ctx.buffers.push_back({buf.data(), buf.size()});
    ExecutionEngine engine(dev);
    engine.dispatch(ctx);

    for (size_t i = 0; i < regs.size(); ++i) {
        // NaN payloads may legitimately differ between libm calls that
        // both return NaN; everything else must match bit-exactly.
        bool both_nan = std::isnan(f(buf[i])) && std::isnan(f(host[i]));
        if (!both_nan) {
            ASSERT_EQ(buf[i], host[i])
                << "trial " << seed << " reg " << i << " kind "
                << kinds[i];
        }
    }
}

class InterpreterOracle : public ::testing::TestWithParam<int>
{
};

TEST_P(InterpreterOracle, RandomProgramMatchesHostEvaluation)
{
    // Each parameter seeds 8 random programs.
    for (int sub = 0; sub < 8; ++sub)
        runTrial(static_cast<uint64_t>(GetParam()) * 8 + sub);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpreterOracle,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Property: any builder-authored kernel — including randomized control
// flow, bindings, push constants and shared memory — must validate,
// survive a binary round trip bit-exactly, and disassemble.
// ---------------------------------------------------------------------------

/** Build a random but well-formed kernel (straight-line arithmetic
 *  interleaved with nested structured control flow). */
spirv::Module
buildRandomKernel(uint64_t seed)
{
    Rng rng(seed);
    uint32_t local = 1u << rng.nextBelow(9); // 1..256 lanes
    Builder b("rand_" + std::to_string(seed), local);

    uint32_t num_bindings = 1 + (uint32_t)rng.nextBelow(4);
    for (uint32_t i = 0; i < num_bindings; ++i)
        b.bindStorage(i,
                      rng.nextBelow(2) ? ElemType::F32 : ElemType::I32,
                      /*read_only=*/i > 0 && rng.nextBelow(2));
    uint32_t push_words = (uint32_t)rng.nextBelow(5);
    b.setPushWords(push_words);
    bool shared = rng.nextBelow(2) != 0;
    if (shared)
        b.setSharedWords(16 + (uint32_t)rng.nextBelow(48));

    std::vector<Builder::Reg> vals = {b.constI(1), b.constF(2.5f),
                                      b.globalIdX()};
    if (push_words > 0)
        vals.push_back(b.ldPush((uint32_t)rng.nextBelow(push_words)));
    auto any = [&]() { return vals[rng.nextBelow(vals.size())]; };

    for (int op = 0; op < 24; ++op) {
        switch (rng.nextBelow(8)) {
          case 0:
            vals.push_back(b.iadd(any(), any()));
            break;
          case 1:
            vals.push_back(b.fmul(any(), any()));
            break;
          case 2:
            vals.push_back(b.select(b.ilt(any(), any()), any(), any()));
            break;
          case 3:
            b.ifThen(b.ieq(any(), any()),
                     [&] { vals.push_back(b.isub(any(), any())); });
            break;
          case 4: {
            auto begin = b.constI(0);
            auto end = b.constI(1 + (int32_t)rng.nextBelow(4));
            auto step = b.constI(1);
            b.forRange(begin, end, step, [&](Builder::Reg i) {
                vals.push_back(b.iadd(i, any()));
            });
            break;
          }
          case 5:
            if (shared) {
                auto addr = b.constI((int32_t)rng.nextBelow(16));
                b.stShared(addr, any());
                vals.push_back(b.ldShared(addr));
            } else {
                vals.push_back(b.ixor(any(), any()));
            }
            break;
          case 6:
            b.ifThenElse(
                b.ine(any(), any()),
                [&] { vals.push_back(b.imax(any(), any())); },
                [&] { vals.push_back(b.imin(any(), any())); });
            break;
          default:
            vals.push_back(b.cvtSF(any()));
            break;
        }
    }
    // A guarded store so every kernel touches binding 0 in-bounds.
    auto zero = b.constI(0);
    b.ifThen(b.ieq(b.globalIdX(), zero),
             [&] { b.stBuf(0, zero, any()); });
    return b.finish();
}

class BuilderRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(BuilderRoundTrip, RandomKernelValidatesRoundTripsDisassembles)
{
    for (int sub = 0; sub < 4; ++sub) {
        uint64_t seed = static_cast<uint64_t>(GetParam()) * 4 + sub;
        spirv::Module m = buildRandomKernel(seed);

        std::string err;
        ASSERT_TRUE(spirv::validate(m, &err))
            << "seed " << seed << ": " << err;

        std::vector<uint32_t> bin = m.serialize();
        spirv::Module back = spirv::Module::deserialize(bin);
        EXPECT_EQ(back.name, m.name) << seed;
        EXPECT_EQ(back.code, m.code) << seed;
        EXPECT_EQ(back.pushWords, m.pushWords) << seed;
        EXPECT_EQ(back.sharedWords, m.sharedWords) << seed;
        EXPECT_EQ(back.bindings.size(), m.bindings.size()) << seed;
        EXPECT_EQ(back.serialize(), bin) << seed;
        ASSERT_TRUE(spirv::validate(back, &err))
            << "seed " << seed << ": " << err;

        std::string text = spirv::disassemble(back);
        EXPECT_NE(text.find(m.name), std::string::npos) << seed;
        EXPECT_NE(text.find("Ret"), std::string::npos) << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderRoundTrip,
                         ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Property: ThreadPool::parallelFor runs every index exactly once, for
// any (count, worker) combination, and exceptions escaping a work item
// are a panic (simulator work items must not throw).
// ---------------------------------------------------------------------------

TEST(ThreadPoolProperty, EveryIndexRunsExactlyOnce)
{
    for (unsigned workers : {0u, 1u, 3u}) {
        ThreadPool pool(workers);
        for (uint64_t count : {0ull, 1ull, 7ull, 256ull, 10000ull}) {
            std::vector<std::atomic<uint32_t>> hits(count);
            std::atomic<uint64_t> total{0};
            pool.parallelFor(count, [&](uint64_t i) {
                hits[i].fetch_add(1);
                total.fetch_add(1);
            });
            EXPECT_EQ(total.load(), count)
                << workers << " workers, count " << count;
            for (uint64_t i = 0; i < count; ++i)
                ASSERT_EQ(hits[i].load(), 1u)
                    << "index " << i << " with " << workers
                    << " workers";
        }
    }
}

TEST(ThreadPoolProperty, ReusableAcrossManyJobs)
{
    ThreadPool pool(2);
    std::atomic<uint64_t> total{0};
    for (int job = 0; job < 50; ++job)
        pool.parallelFor(job, [&](uint64_t) { total.fetch_add(1); });
    // sum 0..49
    EXPECT_EQ(total.load(), 49ull * 50 / 2);
}

TEST(ThreadPoolProperty, ThrowingWorkItemIsFatal)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    ASSERT_DEATH(
        {
            ThreadPool pool(2);
            pool.parallelFor(64, [&](uint64_t i) {
                if (i == 13)
                    throw std::runtime_error("boom");
            });
        },
        "");
}

// ---------------------------------------------------------------------------
// Property: parallelForRange covers [0, count) with disjoint ranges,
// each index exactly once, and hands out worker slots usable as
// indices into a per-worker accumulator array (0 = caller).
// ---------------------------------------------------------------------------

TEST(ThreadPoolProperty, RangesCoverEveryIndexExactlyOnce)
{
    for (int workers : {0, 1, 3}) {
        ThreadPool pool(workers);
        for (uint64_t count : {0ull, 1ull, 2ull, 7ull, 10000ull}) {
            std::vector<std::atomic<uint32_t>> hits(count);
            std::vector<uint64_t> per_worker(pool.workerCount() + 1, 0);
            std::mutex mtx;
            pool.parallelForRange(
                count, [&](uint64_t begin, uint64_t end, unsigned w) {
                    ASSERT_LT(w, pool.workerCount() + 1);
                    ASSERT_LE(begin, end);
                    for (uint64_t i = begin; i < end; ++i)
                        hits[i].fetch_add(1);
                    std::lock_guard<std::mutex> lk(mtx);
                    per_worker[w] += end - begin;
                });
            uint64_t total = 0;
            for (uint64_t i = 0; i < count; ++i)
                ASSERT_EQ(hits[i].load(), 1u)
                    << "index " << i << " with " << workers
                    << " workers";
            for (uint64_t n : per_worker)
                total += n;
            EXPECT_EQ(total, count);
        }
    }
}

TEST(ThreadPoolProperty, SerialPoolRunsRangesOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    unsigned seen_worker = 99;
    uint64_t covered = 0;
    pool.parallelForRange(100, [&](uint64_t b, uint64_t e, unsigned w) {
        seen_worker = w;
        covered += e - b;
    });
    EXPECT_EQ(seen_worker, 0u); // slot 0 = calling thread
    EXPECT_EQ(covered, 100u);
}

// ---------------------------------------------------------------------------
// VCB_THREADS governs the global pool size (reproducible perf runs):
// N means N total executing threads, i.e. N-1 pool workers; invalid
// values fall back to the hardware default.
// ---------------------------------------------------------------------------

TEST(ThreadPoolProperty, VcbThreadsEnvOverride)
{
    const char *old = std::getenv("VCB_THREADS");
    std::string saved = old ? old : "";

    setenv("VCB_THREADS", "5", 1);
    EXPECT_EQ(ThreadPool::globalWorkers(), 4);
    setenv("VCB_THREADS", "1", 1);
    EXPECT_EQ(ThreadPool::globalWorkers(), 0); // fully serial

    // Invalid values fall back to the hardware default (-1).
    for (const char *bad : {"0", "-3", "abc", "4097", "2x"}) {
        setenv("VCB_THREADS", bad, 1);
        EXPECT_EQ(ThreadPool::globalWorkers(), -1) << bad;
    }
    unsetenv("VCB_THREADS");
    EXPECT_EQ(ThreadPool::globalWorkers(), -1);

    // A pool built from the override honours the worker count.
    setenv("VCB_THREADS", "3", 1);
    ThreadPool pool(ThreadPool::globalWorkers());
    EXPECT_EQ(pool.workerCount(), 2u);

    if (old)
        setenv("VCB_THREADS", saved.c_str(), 1);
    else
        unsetenv("VCB_THREADS");
}

// ---------------------------------------------------------------------------
// The global pool accepts jobs from several threads at once (the serve
// broker's sessions all dispatch through it): every submitter's range
// must still be covered exactly once, with no cross-talk between
// concurrently running jobs.
// ---------------------------------------------------------------------------

TEST(ThreadPoolProperty, ConcurrentSubmittersCoverExactlyOnce)
{
    ThreadPool pool(3);
    constexpr int kSubmitters = 4;
    constexpr uint64_t kCount = 5000;
    constexpr int kRounds = 8;

    std::vector<std::thread> submitters;
    std::atomic<int> failures{0};
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&pool, &failures] {
            for (int round = 0; round < kRounds; ++round) {
                std::vector<std::atomic<uint32_t>> hits(kCount);
                pool.parallelForRange(
                    kCount,
                    [&](uint64_t begin, uint64_t end, unsigned) {
                        for (uint64_t i = begin; i < end; ++i)
                            hits[i].fetch_add(1);
                    });
                for (uint64_t i = 0; i < kCount; ++i)
                    if (hits[i].load() != 1u)
                        ++failures;
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// UVM property: a seeded random alloc/free trace against UvmAccounting
// (the one bookkeeping object all three front-ends embed) keeps
// heapUsed exactly equal to a shadow sum of live allocations — no
// drift — and every placement / derate answer follows the model's
// definition at the moment of the call.
// ---------------------------------------------------------------------------

class UvmAccountingTrace : public ::testing::TestWithParam<int>
{
};

TEST_P(UvmAccountingTrace, HeapUsedNeverDriftsFromShadowSum)
{
    const uint64_t seed =
        std::getenv("VCB_PROPERTY_SEED")
            ? std::strtoull(std::getenv("VCB_PROPERTY_SEED"), nullptr,
                            10)
            : 42;
    Rng rng(seed * 1000 + static_cast<uint64_t>(GetParam()));

    DeviceSpec dev = adreno506();
    dev.deviceHeapBytes = 1 << 20;
    // Mix of hard-cap and paging parts across trials.
    dev.uvmOversubscription = GetParam() % 2 ? 4.0 : 1.0;
    dev.uvmPageBytes = 64 * 1024;
    dev.uvmOversubBwDerate = 0.5;
    ASSERT_EQ(dev.uvmPagingEnabled(), GetParam() % 2 == 1);

    UvmAccounting uvm(dev);
    std::vector<uint64_t> live; // shadow allocation list
    uint64_t shadow = 0;
    uint64_t placed_paged = 0, refused = 0;

    for (int step = 0; step < 2000; ++step) {
        bool do_alloc = live.empty() || rng.nextBelow(3) != 0;
        if (do_alloc) {
            // Sizes from 4 B to ~2x the cap, so every Placement arm
            // is exercised (DeviceLocal, Paged, TooBig).
            uint64_t bytes =
                4 + rng.nextBelow(2 * dev.uvmCapBytes());
            auto placement = uvm.alloc(bytes);
            if (placement == UvmAccounting::Placement::TooBig) {
                // Refused: usage must be untouched.
                ++refused;
                ASSERT_GT(shadow + bytes, dev.uvmCapBytes()) << step;
            } else {
                // Placement matches the model's predicate against the
                // usage BEFORE this allocation.
                bool paged = shadow + bytes > dev.deviceHeapBytes;
                ASSERT_EQ(placement == UvmAccounting::Placement::Paged,
                          paged)
                    << "seed " << seed << " step " << step;
                if (paged)
                    ++placed_paged;
                ASSERT_LE(shadow + bytes, dev.uvmCapBytes()) << step;
                shadow += bytes;
                live.push_back(bytes);
            }
        } else {
            size_t i = rng.nextBelow(live.size());
            uvm.free(live[i]);
            shadow -= live[i];
            live[i] = live.back();
            live.pop_back();
        }
        // The invariant proper: exact equality, every step.
        ASSERT_EQ(uvm.heapUsed(), shadow)
            << "seed " << seed << " step " << step;
        ASSERT_EQ(uvm.oversubscribed(), shadow > dev.deviceHeapBytes)
            << step;
        ASSERT_EQ(uvm.bwDerate(), uvm.oversubscribed()
                                      ? dev.uvmOversubBwDerate
                                      : 1.0)
            << step;
    }
    // Hard-cap trials can never page; paging trials must have (the
    // size distribution guarantees both arms are hit).
    if (!dev.uvmPagingEnabled()) {
        EXPECT_EQ(placed_paged, 0u);
        EXPECT_GT(refused, 0u);
    } else {
        EXPECT_GT(placed_paged, 0u);
    }
    // Draining every live allocation returns usage to exactly zero.
    for (uint64_t bytes : live)
        uvm.free(bytes);
    EXPECT_EQ(uvm.heapUsed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UvmAccountingTrace,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Serve property: a seeded random request mix answered by a concurrent
// multi-session broker is bit-identical to the serial golden path
// (same hashes, same simulated times), for any seed.
// ---------------------------------------------------------------------------

TEST(ServeProperty, SeededRandomMixMatchesSerialGolden)
{
    struct Combo
    {
        const char *bench, *api, *device;
    };
    // Known-good (bench, api, device) triples at size index 0.
    static const Combo kCombos[] = {
        {"bfs", "vulkan", "gtx1050ti"},
        {"bfs", "opencl", "gtx1050ti"},
        {"bfs", "cuda", "gtx1050ti"},
        {"pathfinder", "vulkan", "gtx1050ti"},
        {"pathfinder", "opencl", "gtx1050ti"},
        {"hotspot", "cuda", "gtx1050ti"},
        {"nw", "vulkan", "rx560"},
        {"nw", "opencl", "rx560"},
    };
    const uint64_t seed =
        std::getenv("VCB_PROPERTY_SEED")
            ? std::strtoull(std::getenv("VCB_PROPERTY_SEED"), nullptr,
                            10)
            : 42;
    Rng rng(seed);

    std::vector<serve::Request> mix;
    for (int i = 0; i < 10; ++i) {
        const Combo &c = kCombos[rng.nextBelow(std::size(kCombos))];
        serve::Request r;
        r.id = "p" + std::to_string(i);
        r.bench = c.bench;
        r.api = c.api;
        r.device = c.device;
        mix.push_back(r);
    }

    std::vector<serve::Response> golden;
    for (const serve::Request &r : mix)
        golden.push_back(serve::executeRequest(r));

    serve::ServeBroker broker(serve::BrokerConfig{3, {}});
    std::vector<serve::Response> served(mix.size());
    std::atomic<size_t> cursor{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&] {
            for (;;) {
                size_t i = cursor.fetch_add(1);
                if (i >= mix.size())
                    return;
                served[i] = broker.submitSync(mix[i]);
            }
        });
    }
    for (auto &t : clients)
        t.join();

    for (size_t i = 0; i < mix.size(); ++i) {
        ASSERT_TRUE(golden[i].ok)
            << "seed " << seed << " " << mix[i].id << ": "
            << golden[i].error;
        ASSERT_TRUE(served[i].ok)
            << "seed " << seed << " " << mix[i].id << ": "
            << served[i].error;
        EXPECT_TRUE(served[i].validated) << mix[i].id;
        EXPECT_EQ(served[i].resultHash, golden[i].resultHash)
            << "seed " << seed << " " << mix[i].id;
        EXPECT_EQ(served[i].kernelRegionNs, golden[i].kernelRegionNs)
            << "seed " << seed << " " << mix[i].id;
        EXPECT_EQ(served[i].totalNs, golden[i].totalNs)
            << "seed " << seed << " " << mix[i].id;
        EXPECT_EQ(served[i].launches, golden[i].launches)
            << "seed " << seed << " " << mix[i].id;
    }
}

} // namespace
} // namespace vcb::sim

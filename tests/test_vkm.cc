/** @file Vulkan-mini API: object lifecycle, memory model, validation
 *  errors, command recording/submission, fences, timestamps and
 *  multi-queue behaviour. */

#include <gtest/gtest.h>

#include "common/mathutil.h"
#include "kernels/kernels.h"
#include "vkm/vkm.h"

namespace vcb::vkm {
namespace {

Instance
makeInstance()
{
    Instance inst;
    check(createInstance({"test", true}, &inst), "createInstance");
    return inst;
}

PhysicalDevice
physByName(Instance inst, const char *needle)
{
    for (auto pd : enumeratePhysicalDevices(inst))
        if (getPhysicalDeviceProperties(pd).deviceName.find(needle) !=
            std::string::npos)
            return pd;
    return PhysicalDevice();
}

Device
makeDevice(PhysicalDevice pd)
{
    Device dev;
    DeviceCreateInfo dci;
    dci.queueCreateInfos.push_back({0, 1});
    dci.queueCreateInfos.push_back({1, 1});
    check(createDevice(pd, dci, &dev), "createDevice");
    return dev;
}

TEST(VkmInstance, EnumeratesAllFourDevices)
{
    Instance inst = makeInstance();
    EXPECT_EQ(enumeratePhysicalDevices(inst).size(), 4u);
}

TEST(VkmInstance, QueueFamiliesMatchSpec)
{
    Instance inst = makeInstance();
    auto pd = physByName(inst, "GTX1050Ti");
    ASSERT_TRUE(pd.valid());
    auto families = getPhysicalDeviceQueueFamilyProperties(pd);
    ASSERT_EQ(families.size(), 2u);
    EXPECT_TRUE(families[0].queueFlags & QueueCompute);
    EXPECT_TRUE(families[0].queueFlags & QueueTransfer);
    EXPECT_FALSE(families[1].queueFlags & QueueCompute);
    EXPECT_EQ(families[0].queueCount, 8u);
}

TEST(VkmInstance, MemoryPropertiesDiscreteVsUnified)
{
    Instance inst = makeInstance();
    auto desktop = getPhysicalDeviceMemoryProperties(
        physByName(inst, "GTX1050Ti"));
    EXPECT_EQ(desktop.memoryHeaps.size(), 2u);
    EXPECT_EQ(desktop.memoryTypes.size(), 2u);
    EXPECT_EQ(desktop.memoryTypes[0].propertyFlags, MemoryDeviceLocal);

    auto mobile = getPhysicalDeviceMemoryProperties(
        physByName(inst, "Adreno"));
    EXPECT_EQ(mobile.memoryHeaps.size(), 1u);
    ASSERT_EQ(mobile.memoryTypes.size(), 1u);
    EXPECT_TRUE(mobile.memoryTypes[0].propertyFlags & MemoryDeviceLocal);
    EXPECT_TRUE(mobile.memoryTypes[0].propertyFlags & MemoryHostVisible);
}

TEST(VkmInstance, FindMemoryType)
{
    Instance inst = makeInstance();
    auto props = getPhysicalDeviceMemoryProperties(
        physByName(inst, "GTX1050Ti"));
    EXPECT_EQ(findMemoryType(props, 0x3, MemoryDeviceLocal), 0u);
    EXPECT_EQ(findMemoryType(props, 0x3,
                             MemoryHostVisible | MemoryHostCoherent),
              1u);
    // Exclude type 1 from the allowed bits: no host-visible match.
    EXPECT_EQ(findMemoryType(props, 0x1, MemoryHostVisible), UINT32_MAX);
}

TEST(VkmDevice, RejectsExcessQueueRequests)
{
    Instance inst = makeInstance();
    auto pd = physByName(inst, "Adreno"); // 1 compute queue
    Device dev;
    DeviceCreateInfo dci;
    dci.queueCreateInfos.push_back({0, 4});
    EXPECT_EQ(createDevice(pd, dci, &dev), Result::ErrorValidation);
}

TEST(VkmBuffer, CreateRequiresSaneSizeAndUsage)
{
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "GTX1050Ti"));
    Buffer buf;
    EXPECT_EQ(createBuffer(dev, {0, BufferUsageStorage}, &buf),
              Result::ErrorValidation);
    EXPECT_EQ(createBuffer(dev, {6, BufferUsageStorage}, &buf),
              Result::ErrorValidation);
    EXPECT_EQ(createBuffer(dev, {64, 0}, &buf), Result::ErrorValidation);
    EXPECT_EQ(createBuffer(dev, {64, BufferUsageStorage}, &buf),
              Result::Success);
    EXPECT_EQ(bufferSize(buf), 64u);
}

TEST(VkmMemory, AllocateBindMapLifecycle)
{
    Instance inst = makeInstance();
    auto pd = physByName(inst, "GTX1050Ti");
    Device dev = makeDevice(pd);
    Buffer buf;
    check(createBuffer(dev,
                       {1024, BufferUsageStorage | BufferUsageTransferDst},
                       &buf),
          "createBuffer");
    auto reqs = getBufferMemoryRequirements(dev, buf);
    EXPECT_GE(reqs.size, 1024u);
    EXPECT_EQ(reqs.size % 256, 0u);

    auto props = getPhysicalDeviceMemoryProperties(pd);
    uint32_t host_type = findMemoryType(
        props, reqs.memoryTypeBits,
        MemoryHostVisible | MemoryHostCoherent);
    DeviceMemory mem;
    check(allocateMemory(dev, {reqs.size, host_type}, &mem),
          "allocateMemory");
    check(bindBufferMemory(dev, buf, mem, 0), "bindBufferMemory");
    // Double bind is a validation error.
    EXPECT_EQ(bindBufferMemory(dev, buf, mem, 0),
              Result::ErrorValidation);

    void *ptr = nullptr;
    check(mapMemory(dev, mem, 0, 1024, &ptr), "mapMemory");
    ASSERT_NE(ptr, nullptr);
    // Double map is a validation error.
    void *ptr2 = nullptr;
    EXPECT_EQ(mapMemory(dev, mem, 0, 1024, &ptr2),
              Result::ErrorValidation);
    unmapMemory(dev, mem);
}

TEST(VkmMemory, DeviceLocalIsNotMappableOnDiscrete)
{
    Instance inst = makeInstance();
    auto pd = physByName(inst, "RX560");
    Device dev = makeDevice(pd);
    DeviceMemory mem;
    check(allocateMemory(dev, {4096, 0}, &mem), "allocateMemory");
    void *ptr = nullptr;
    EXPECT_EQ(mapMemory(dev, mem, 0, 4096, &ptr),
              Result::ErrorMemoryMapFailed);
}

TEST(VkmMemory, HeapExhaustionReturnsOutOfDeviceMemory)
{
    Instance inst = makeInstance();
    auto pd = physByName(inst, "Adreno"); // 512 MiB heap
    Device dev = makeDevice(pd);
    DeviceMemory a, b;
    EXPECT_EQ(allocateMemory(dev, {400ull << 20, 0}, &a),
              Result::Success);
    EXPECT_EQ(allocateMemory(dev, {400ull << 20, 0}, &b),
              Result::ErrorOutOfDeviceMemory);
    // Freeing returns budget.
    freeMemory(dev, a);
    EXPECT_EQ(allocateMemory(dev, {400ull << 20, 0}, &b),
              Result::Success);
}

TEST(VkmShader, RejectsMalformedModules)
{
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "GTX1050Ti"));
    ShaderModule mod;
    EXPECT_EQ(createShaderModule(dev, {{}}, &mod),
              Result::ErrorInvalidShader);
    // Corrupt a valid module's code section (register out of range).
    spirv::Module m = kernels::buildVecAdd();
    m.regCount = 1;
    EXPECT_EQ(createShaderModule(dev, {m.serialize()}, &mod),
              Result::ErrorInvalidShader);
    EXPECT_EQ(createShaderModule(
                  dev, {kernels::buildVecAdd().serialize()}, &mod),
              Result::Success);
}

TEST(VkmPipeline, LayoutMustCoverKernelResources)
{
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "GTX1050Ti"));
    ShaderModule mod;
    check(createShaderModule(dev, {kernels::buildVecAdd().serialize()},
                             &mod),
          "createShaderModule");

    // Layout missing binding 2 and the push range.
    DescriptorSetLayout dsl;
    check(createDescriptorSetLayout(dev, {{{0}, {1}}}, &dsl),
          "createDescriptorSetLayout");
    PipelineLayout layout;
    PipelineLayoutCreateInfo plci;
    plci.setLayouts.push_back(dsl);
    check(createPipelineLayout(dev, plci, &layout),
          "createPipelineLayout");
    Pipeline pipeline;
    EXPECT_EQ(createComputePipeline(dev, {mod, layout}, &pipeline),
              Result::ErrorValidation);
}

TEST(VkmPipeline, PushRangeLimitEnforcedPerDevice)
{
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "RX560")); // 128 B limit
    PipelineLayout layout;
    PipelineLayoutCreateInfo plci;
    plci.pushConstantRanges.push_back({0, 192});
    EXPECT_EQ(createPipelineLayout(dev, plci, &layout),
              Result::ErrorValidation);
    plci.pushConstantRanges[0].size = 128;
    EXPECT_EQ(createPipelineLayout(dev, plci, &layout), Result::Success);
}

TEST(VkmPipeline, DriverFailureSurfacesAsInitializationError)
{
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "PowerVR"));
    spirv::Module m = kernels::buildBackpropAdjustWeights();
    ShaderModule mod;
    check(createShaderModule(dev, {m.serialize()}, &mod),
          "createShaderModule");
    DescriptorSetLayout dsl;
    check(createDescriptorSetLayout(dev, {{{0}, {1}, {2}}}, &dsl),
          "createDescriptorSetLayout");
    PipelineLayout layout;
    PipelineLayoutCreateInfo plci;
    plci.setLayouts.push_back(dsl);
    plci.pushConstantRanges.push_back({0, 8});
    check(createPipelineLayout(dev, plci, &layout),
          "createPipelineLayout");
    Pipeline pipeline;
    EXPECT_EQ(createComputePipeline(dev, {mod, layout}, &pipeline),
              Result::ErrorInitializationFailed);
}

TEST(VkmDescriptors, PoolExhaustionAndLayoutChecks)
{
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "GTX1050Ti"));
    DescriptorSetLayout dsl;
    check(createDescriptorSetLayout(dev, {{{0}}}, &dsl),
          "createDescriptorSetLayout");
    DescriptorPool pool;
    check(createDescriptorPool(dev, {2}, &pool), "createDescriptorPool");
    DescriptorSet s1, s2, s3;
    EXPECT_EQ(allocateDescriptorSet(dev, pool, dsl, &s1),
              Result::Success);
    EXPECT_EQ(allocateDescriptorSet(dev, pool, dsl, &s2),
              Result::Success);
    EXPECT_EQ(allocateDescriptorSet(dev, pool, dsl, &s3),
              Result::ErrorValidation);
}

/** Full Listing-1 style round trip, parameterised over every device. */
class VkmEndToEnd : public ::testing::TestWithParam<int>
{
};

TEST_P(VkmEndToEnd, VectorAddOnEveryDevice)
{
    Instance inst = makeInstance();
    auto pd = enumeratePhysicalDevices(inst)[GetParam()];
    Device dev = makeDevice(pd);
    Queue queue = getDeviceQueue(dev, 0, 0);

    const uint32_t n = 2048;
    auto props = getPhysicalDeviceMemoryProperties(pd);
    auto make_host_buffer = [&](Buffer *buf) {
        check(createBuffer(dev, {n * 4, BufferUsageStorage}, buf),
              "createBuffer");
        auto reqs = getBufferMemoryRequirements(dev, *buf);
        uint32_t type = findMemoryType(
            props, reqs.memoryTypeBits,
            MemoryHostVisible | MemoryHostCoherent);
        ASSERT_NE(type, UINT32_MAX);
        DeviceMemory mem;
        check(allocateMemory(dev, {reqs.size, type}, &mem),
              "allocateMemory");
        check(bindBufferMemory(dev, *buf, mem, 0), "bindBufferMemory");
    };
    Buffer x, y, z;
    make_host_buffer(&x);
    make_host_buffer(&y);
    make_host_buffer(&z);

    auto fill = [&](Buffer buf, float base) {
        void *ptr = nullptr;
        check(mapMemory(dev, bufferMemory(buf), 0, n * 4, &ptr),
              "mapMemory");
        float *f = static_cast<float *>(ptr);
        for (uint32_t i = 0; i < n; ++i)
            f[i] = base + i;
        unmapMemory(dev, bufferMemory(buf));
    };
    fill(x, 1.0f);
    fill(y, 1000.0f);

    ShaderModule mod;
    check(createShaderModule(dev, {kernels::buildVecAdd().serialize()},
                             &mod),
          "createShaderModule");
    DescriptorSetLayout dsl;
    check(createDescriptorSetLayout(dev, {{{0}, {1}, {2}}}, &dsl),
          "createDescriptorSetLayout");
    PipelineLayout layout;
    PipelineLayoutCreateInfo plci;
    plci.setLayouts.push_back(dsl);
    plci.pushConstantRanges.push_back({0, 4});
    check(createPipelineLayout(dev, plci, &layout),
          "createPipelineLayout");
    Pipeline pipeline;
    check(createComputePipeline(dev, {mod, layout}, &pipeline),
          "createComputePipeline");

    DescriptorPool pool;
    check(createDescriptorPool(dev, {4}, &pool), "createDescriptorPool");
    DescriptorSet set;
    check(allocateDescriptorSet(dev, pool, dsl, &set),
          "allocateDescriptorSet");
    updateDescriptorSets(dev, {{set, 0, x}, {set, 1, y}, {set, 2, z}});

    CommandPool cmd_pool;
    check(createCommandPool(dev, {0}, &cmd_pool), "createCommandPool");
    CommandBuffer cb;
    check(allocateCommandBuffer(dev, cmd_pool, &cb),
          "allocateCommandBuffer");
    check(beginCommandBuffer(cb), "begin");
    cmdBindPipeline(cb, pipeline);
    cmdBindDescriptorSet(cb, layout, 0, set);
    cmdPushConstants(cb, layout, 0, 4, &n);
    cmdDispatch(cb, (uint32_t)ceilDiv(n, 256), 1, 1);
    check(endCommandBuffer(cb), "end");

    Fence fence;
    check(createFence(dev, &fence), "createFence");
    double t0 = hostNowNs(dev);
    SubmitInfo si;
    si.commandBuffers.push_back(cb);
    check(queueSubmit(queue, {si}, fence), "queueSubmit");
    check(waitForFences(dev, {fence}), "waitForFences");
    EXPECT_GT(hostNowNs(dev), t0);

    void *ptr = nullptr;
    check(mapMemory(dev, bufferMemory(z), 0, n * 4, &ptr), "mapMemory");
    const float *out = static_cast<const float *>(ptr);
    for (uint32_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(out[i], 1001.0f + 2.0f * i) << i;
    unmapMemory(dev, bufferMemory(z));
}

INSTANTIATE_TEST_SUITE_P(AllDevices, VkmEndToEnd,
                         ::testing::Range(0, 4));

TEST(VkmCommands, StateMachineValidation)
{
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "GTX1050Ti"));
    CommandPool pool;
    check(createCommandPool(dev, {0}, &pool), "createCommandPool");
    CommandBuffer cb;
    check(allocateCommandBuffer(dev, pool, &cb),
          "allocateCommandBuffer");
    check(beginCommandBuffer(cb), "begin");
    EXPECT_EQ(beginCommandBuffer(cb), Result::ErrorValidation);
    check(endCommandBuffer(cb), "end");
    EXPECT_EQ(endCommandBuffer(cb), Result::ErrorValidation);

    // Submitting an unrecorded buffer is a validation error.
    CommandBuffer fresh;
    check(allocateCommandBuffer(dev, pool, &fresh),
          "allocateCommandBuffer");
    Queue queue = getDeviceQueue(dev, 0, 0);
    SubmitInfo si;
    si.commandBuffers.push_back(fresh);
    EXPECT_EQ(queueSubmit(queue, {si}, Fence()),
              Result::ErrorValidation);
}

TEST(VkmCommands, DispatchWithoutPipelineFailsAtSubmit)
{
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "GTX1050Ti"));
    CommandPool pool;
    check(createCommandPool(dev, {0}, &pool), "createCommandPool");
    CommandBuffer cb;
    check(allocateCommandBuffer(dev, pool, &cb),
          "allocateCommandBuffer");
    check(beginCommandBuffer(cb), "begin");
    cmdDispatch(cb, 1, 1, 1);
    check(endCommandBuffer(cb), "end");
    Queue queue = getDeviceQueue(dev, 0, 0);
    SubmitInfo si;
    si.commandBuffers.push_back(cb);
    EXPECT_EQ(queueSubmit(queue, {si}, Fence()),
              Result::ErrorValidation);
}

TEST(VkmSync, FenceLifecycle)
{
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "GTX1050Ti"));
    Fence fence;
    check(createFence(dev, &fence), "createFence");
    // Waiting on a never-submitted fence is an error.
    EXPECT_EQ(waitForFences(dev, {fence}), Result::ErrorValidation);
    bool signaled = true;
    check(getFenceStatus(dev, fence, &signaled), "getFenceStatus");
    EXPECT_FALSE(signaled);
}

TEST(VkmSync, TimestampsOrderWithinCommandBuffer)
{
    Instance inst = makeInstance();
    auto pd = physByName(inst, "GTX1050Ti");
    Device dev = makeDevice(pd);
    Queue queue = getDeviceQueue(dev, 0, 0);
    QueryPool qp;
    check(createQueryPool(dev, {2}, &qp), "createQueryPool");

    CommandPool pool;
    check(createCommandPool(dev, {0}, &pool), "createCommandPool");
    CommandBuffer cb;
    check(allocateCommandBuffer(dev, pool, &cb),
          "allocateCommandBuffer");

    Buffer buf;
    check(createBuffer(
              dev, {4096, BufferUsageStorage | BufferUsageTransferDst},
              &buf),
          "createBuffer");
    auto reqs = getBufferMemoryRequirements(dev, buf);
    DeviceMemory mem;
    check(allocateMemory(dev, {reqs.size, 0}, &mem), "allocateMemory");
    check(bindBufferMemory(dev, buf, mem, 0), "bindBufferMemory");

    check(beginCommandBuffer(cb), "begin");
    cmdWriteTimestamp(cb, qp, 0);
    cmdFillBuffer(cb, buf, 0, 4096, 7);
    cmdWriteTimestamp(cb, qp, 1);
    check(endCommandBuffer(cb), "end");

    std::vector<double> results;
    EXPECT_EQ(getQueryPoolResults(dev, qp, 0, 2, &results),
              Result::NotReady);

    Fence fence;
    check(createFence(dev, &fence), "createFence");
    SubmitInfo si;
    si.commandBuffers.push_back(cb);
    check(queueSubmit(queue, {si}, fence), "queueSubmit");
    check(waitForFences(dev, {fence}), "waitForFences");

    check(getQueryPoolResults(dev, qp, 0, 2, &results),
          "getQueryPoolResults");
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[1], results[0]);
}

TEST(VkmCommands, OversizedPushLayoutsReplaySafely)
{
    // Regression: replaySubmits kept a fixed 64-word push buffer, so a
    // pipeline layout declaring more than 256 bytes of push constants
    // overflowed it at replay.  The buffer is now sized from the bound
    // layout.  Needs a device whose limit admits such a layout.
    sim::DeviceSpec big = sim::gtx1050ti();
    big.name = "GTX1050Ti-bigpush";
    big.maxPushBytes = 512;
    sim::setActiveDeviceRegistry({big});
    {
        Instance inst = makeInstance();
        auto pd = enumeratePhysicalDevices(inst)[0];
        Device dev = makeDevice(pd);

        ShaderModule mod;
        check(createShaderModule(
                  dev, {kernels::buildVecAdd().serialize()}, &mod),
              "createShaderModule");
        DescriptorSetLayout dsl;
        check(createDescriptorSetLayout(dev, {{{0}, {1}, {2}}}, &dsl),
              "createDescriptorSetLayout");
        PipelineLayout layout;
        PipelineLayoutCreateInfo plci;
        plci.setLayouts.push_back(dsl);
        plci.pushConstantRanges.push_back({0, 512});
        check(createPipelineLayout(dev, plci, &layout),
              "createPipelineLayout");
        Pipeline pipeline;
        check(createComputePipeline(dev, {mod, layout}, &pipeline),
              "createComputePipeline");

        CommandPool pool;
        check(createCommandPool(dev, {0}, &pool), "createCommandPool");
        CommandBuffer cb;
        check(allocateCommandBuffer(dev, pool, &cb),
              "allocateCommandBuffer");
        uint32_t words[128] = {};
        words[127] = 0xDEADBEEF;
        check(beginCommandBuffer(cb), "begin");
        cmdBindPipeline(cb, pipeline);
        cmdPushConstants(cb, layout, 0, 512, words);
        check(endCommandBuffer(cb), "end");

        Queue queue = getDeviceQueue(dev, 0, 0);
        SubmitInfo si;
        si.commandBuffers.push_back(cb);
        EXPECT_EQ(queueSubmit(queue, {si}, Fence()), Result::Success);
    }
    sim::setActiveDeviceRegistry(sim::deviceRegistry());
}

TEST(VkmSync, WaitOnNeverSignaledSemaphoreFailsValidation)
{
    // Regression: waiting on a semaphore no submit ever signaled was a
    // silent no-op wait; it now fails validation like waiting on a
    // never-submitted fence.
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "GTX1050Ti"));
    Queue queue = getDeviceQueue(dev, 0, 0);
    CommandPool pool;
    check(createCommandPool(dev, {0}, &pool), "createCommandPool");
    CommandBuffer cb;
    check(allocateCommandBuffer(dev, pool, &cb),
          "allocateCommandBuffer");
    check(beginCommandBuffer(cb), "begin");
    check(endCommandBuffer(cb), "end");

    Semaphore sem;
    check(createSemaphore(dev, &sem), "createSemaphore");
    SubmitInfo wait;
    wait.waitSemaphores.push_back(sem);
    wait.commandBuffers.push_back(cb);
    EXPECT_EQ(queueSubmit(queue, {wait}, Fence()),
              Result::ErrorValidation);

    // Signal once, wait once: fine.  A binary semaphore's wait
    // consumes the signal, so a second wait is the same error.
    SubmitInfo signal;
    signal.commandBuffers.push_back(cb);
    signal.signalSemaphores.push_back(sem);
    check(queueSubmit(queue, {signal}, Fence()), "queueSubmit");
    EXPECT_EQ(queueSubmit(queue, {wait}, Fence()), Result::Success);
    EXPECT_EQ(queueSubmit(queue, {wait}, Fence()),
              Result::ErrorValidation);
}

TEST(VkmCommands, BoundStateDoesNotCarryAcrossCommandBuffers)
{
    // Regression: replaySubmits carried the bound pipeline across
    // command-buffer boundaries, so a second command buffer could
    // dispatch without ever binding — legal in the replayer, illegal
    // at the API.  State is now reset per command buffer.
    Instance inst = makeInstance();
    Device dev = makeDevice(physByName(inst, "GTX1050Ti"));
    Queue queue = getDeviceQueue(dev, 0, 0);

    ShaderModule mod;
    check(createShaderModule(dev,
                             {kernels::buildVecAdd().serialize()},
                             &mod),
          "createShaderModule");
    DescriptorSetLayout dsl;
    check(createDescriptorSetLayout(dev, {{{0}, {1}, {2}}}, &dsl),
          "createDescriptorSetLayout");
    PipelineLayout layout;
    PipelineLayoutCreateInfo plci;
    plci.setLayouts.push_back(dsl);
    plci.pushConstantRanges.push_back({0, 4});
    check(createPipelineLayout(dev, plci, &layout),
          "createPipelineLayout");
    Pipeline pipeline;
    check(createComputePipeline(dev, {mod, layout}, &pipeline),
          "createComputePipeline");

    Buffer buf;
    check(createBuffer(dev, {4096, BufferUsageStorage}, &buf),
          "createBuffer");
    auto reqs = getBufferMemoryRequirements(dev, buf);
    DeviceMemory mem;
    check(allocateMemory(dev, {reqs.size, 0}, &mem), "allocateMemory");
    check(bindBufferMemory(dev, buf, mem, 0), "bindBufferMemory");
    DescriptorPool dpool;
    check(createDescriptorPool(dev, {4}, &dpool),
          "createDescriptorPool");
    DescriptorSet set;
    check(allocateDescriptorSet(dev, dpool, dsl, &set),
          "allocateDescriptorSet");
    updateDescriptorSets(dev,
                         {{set, 0, buf}, {set, 1, buf}, {set, 2, buf}});

    CommandPool pool;
    check(createCommandPool(dev, {0}, &pool), "createCommandPool");
    CommandBuffer first, second;
    check(allocateCommandBuffer(dev, pool, &first), "alloc");
    check(allocateCommandBuffer(dev, pool, &second), "alloc");
    const uint32_t n = 16;
    check(beginCommandBuffer(first), "begin");
    cmdBindPipeline(first, pipeline);
    cmdBindDescriptorSet(first, layout, 0, set);
    cmdPushConstants(first, layout, 0, 4, &n);
    cmdDispatch(first, 1, 1, 1);
    check(endCommandBuffer(first), "end");
    // The second command buffer records only a dispatch, relying on
    // the state the first one bound.
    check(beginCommandBuffer(second), "begin");
    cmdDispatch(second, 1, 1, 1);
    check(endCommandBuffer(second), "end");

    SubmitInfo si;
    si.commandBuffers.push_back(first);
    si.commandBuffers.push_back(second);
    EXPECT_EQ(queueSubmit(queue, {si}, Fence()),
              Result::ErrorValidation);
}

TEST(VkmSync, SemaphoreChainCompletionOrderMatchesSerialOrder)
{
    // Property: a K-link chain of submissions joined by semaphores
    // completes in chain order whether it runs on 1, 2 or 4 compute
    // queues, and the final buffer contents (last fill wins) are
    // identical — spreading a chain never reorders it.
    Instance inst = makeInstance();
    auto pd = physByName(inst, "GTX1050Ti"); // 8 compute queues
    constexpr uint32_t K = 8;
    for (uint32_t n_queues : {1u, 2u, 4u}) {
        Device dev;
        DeviceCreateInfo dci;
        dci.queueCreateInfos.push_back({0, 4});
        check(createDevice(pd, dci, &dev), "createDevice");

        Buffer buf;
        check(createBuffer(
                  dev,
                  {4096, BufferUsageStorage | BufferUsageTransferDst},
                  &buf),
              "createBuffer");
        auto reqs = getBufferMemoryRequirements(dev, buf);
        auto props = getPhysicalDeviceMemoryProperties(pd);
        uint32_t type =
            findMemoryType(props, reqs.memoryTypeBits,
                           MemoryHostVisible | MemoryHostCoherent);
        ASSERT_NE(type, UINT32_MAX);
        DeviceMemory mem;
        check(allocateMemory(dev, {reqs.size, type}, &mem),
              "allocateMemory");
        check(bindBufferMemory(dev, buf, mem, 0), "bindBufferMemory");

        CommandPool pool;
        check(createCommandPool(dev, {0}, &pool), "createCommandPool");
        QueryPool qp;
        check(createQueryPool(dev, {K}, &qp), "createQueryPool");

        std::vector<Semaphore> sems(K);
        for (auto &s : sems)
            check(createSemaphore(dev, &s), "createSemaphore");
        Fence fence;
        check(createFence(dev, &fence), "createFence");

        for (uint32_t i = 0; i < K; ++i) {
            CommandBuffer cb;
            check(allocateCommandBuffer(dev, pool, &cb), "alloc");
            check(beginCommandBuffer(cb), "begin");
            cmdFillBuffer(cb, buf, 0, 4096, i + 1);
            cmdWriteTimestamp(cb, qp, i);
            check(endCommandBuffer(cb), "end");
            SubmitInfo si;
            if (i > 0)
                si.waitSemaphores.push_back(sems[i - 1]);
            si.commandBuffers.push_back(cb);
            si.signalSemaphores.push_back(sems[i]);
            Queue q = getDeviceQueue(dev, 0, i % n_queues);
            check(queueSubmit(q, {si}, i + 1 == K ? fence : Fence()),
                  "queueSubmit");
        }
        check(waitForFences(dev, {fence}), "waitForFences");

        std::vector<double> ts;
        check(getQueryPoolResults(dev, qp, 0, K, &ts),
              "getQueryPoolResults");
        ASSERT_EQ(ts.size(), K);
        for (uint32_t i = 1; i < K; ++i)
            EXPECT_GT(ts[i], ts[i - 1])
                << "queues=" << n_queues << " link " << i;

        void *ptr = nullptr;
        check(mapMemory(dev, bufferMemory(buf), 0, 4, &ptr),
              "mapMemory");
        EXPECT_EQ(*static_cast<uint32_t *>(ptr), K)
            << "queues=" << n_queues;
        unmapMemory(dev, bufferMemory(buf));
    }
}

TEST(VkmSync, SemaphoresChainAcrossQueues)
{
    Instance inst = makeInstance();
    auto pd = physByName(inst, "GTX1050Ti");
    Device dev = makeDevice(pd);
    Queue q0 = getDeviceQueue(dev, 0, 0);
    Queue q1 = getDeviceQueue(dev, 1, 0);

    Buffer a, c;
    for (Buffer *b : {&a, &c}) {
        check(createBuffer(dev,
                           {4096, BufferUsageStorage |
                                      BufferUsageTransferSrc |
                                      BufferUsageTransferDst},
                           b),
              "createBuffer");
        auto reqs = getBufferMemoryRequirements(dev, *b);
        DeviceMemory mem;
        check(allocateMemory(dev, {reqs.size, 0}, &mem),
              "allocateMemory");
        check(bindBufferMemory(dev, *b, mem, 0), "bindBufferMemory");
    }

    CommandPool pool;
    check(createCommandPool(dev, {0}, &pool), "createCommandPool");
    CommandBuffer fill_cb, copy_cb;
    check(allocateCommandBuffer(dev, pool, &fill_cb), "alloc");
    check(allocateCommandBuffer(dev, pool, &copy_cb), "alloc");
    check(beginCommandBuffer(fill_cb), "begin");
    cmdFillBuffer(fill_cb, a, 0, 4096, 9);
    check(endCommandBuffer(fill_cb), "end");
    check(beginCommandBuffer(copy_cb), "begin");
    cmdCopyBuffer(copy_cb, a, c, {0, 0, 4096});
    check(endCommandBuffer(copy_cb), "end");

    Semaphore sem;
    check(createSemaphore(dev, &sem), "createSemaphore");
    Fence fence;
    check(createFence(dev, &fence), "createFence");

    SubmitInfo s0;
    s0.commandBuffers.push_back(fill_cb);
    s0.signalSemaphores.push_back(sem);
    check(queueSubmit(q0, {s0}, Fence()), "queueSubmit");
    SubmitInfo s1;
    s1.waitSemaphores.push_back(sem);
    s1.commandBuffers.push_back(copy_cb);
    check(queueSubmit(q1, {s1}, fence), "queueSubmit");
    check(waitForFences(dev, {fence}), "waitForFences");
    check(deviceWaitIdle(dev), "deviceWaitIdle");
    SUCCEED();
}

} // namespace
} // namespace vcb::vkm

/** @file Interpreter semantics: every op class, builtins, control
 *  flow, barriers, shared memory, atomics, robust access, stats and
 *  the coalescing model. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "kernels/kernels.h"
#include "sim/compile_cache.h"
#include "sim/engine.h"
#include "sim/kernel.h"
#include "spirv/builder.h"

namespace vcb::sim {
namespace {

using spirv::Builder;
using spirv::ElemType;

/** Compile for the GTX1050Ti under Vulkan and run one dispatch. */
DispatchResult
runKernel(const spirv::Module &m, std::vector<std::vector<uint32_t>> &bufs,
          uint32_t gx, const std::vector<uint32_t> &push = {},
          Api api = Api::Vulkan)
{
    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto kernel = compileKernel(m, dev, api, &err);
    if (!kernel)
        panic("compile failed: %s", err.c_str());
    DispatchContext ctx;
    ctx.kernel = kernel.get();
    ctx.groups[0] = gx;
    for (size_t i = 0; i < bufs.size(); ++i)
        ctx.buffers.push_back({bufs[i].data(), bufs[i].size()});
    ctx.push = push.data();
    ctx.pushWords = static_cast<uint32_t>(push.size());
    ExecutionEngine engine(dev);
    return engine.dispatch(ctx);
}

float
asFloat(uint32_t bits)
{
    float f;
    static_assert(sizeof(f) == sizeof(bits));
    __builtin_memcpy(&f, &bits, sizeof(f));
    return f;
}

uint32_t
asBits(float f)
{
    uint32_t bits;
    __builtin_memcpy(&bits, &f, sizeof(f));
    return bits;
}

TEST(Interpreter, IntegerArithmetic)
{
    Builder b("int_ops", 1);
    b.bindStorage(0, ElemType::I32);
    auto x = b.constI(-15);
    auto y = b.constI(4);
    uint32_t slot = 0;
    auto store = [&](Builder::Reg r) {
        b.stBuf(0, b.constI(static_cast<int32_t>(slot++)), r);
    };
    store(b.iadd(x, y));  // -11
    store(b.isub(x, y));  // -19
    store(b.imul(x, y));  // -60
    store(b.idiv(x, y));  // -3 (truncated)
    store(b.irem(x, y));  // -3
    store(b.imin(x, y));  // -15
    store(b.imax(x, y));  // 4
    store(b.ineg(x));     // 15
    store(b.ishl(y, b.constI(2)));  // 16
    store(b.ishrs(x, b.constI(1))); // -8 (arithmetic)
    store(b.ishru(x, b.constI(1))); // 0x7ffffff8
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(16, 0)};
    runKernel(b.finish(), bufs, 1);
    auto v = [&](size_t i) { return static_cast<int32_t>(bufs[0][i]); };
    EXPECT_EQ(v(0), -11);
    EXPECT_EQ(v(1), -19);
    EXPECT_EQ(v(2), -60);
    EXPECT_EQ(v(3), -3);
    EXPECT_EQ(v(4), -3);
    EXPECT_EQ(v(5), -15);
    EXPECT_EQ(v(6), 4);
    EXPECT_EQ(v(7), 15);
    EXPECT_EQ(v(8), 16);
    EXPECT_EQ(v(9), -8);
    EXPECT_EQ(bufs[0][10], 0x7ffffff8u);
}

TEST(Interpreter, FloatArithmetic)
{
    Builder b("float_ops", 1);
    b.bindStorage(0, ElemType::F32);
    auto x = b.constF(2.25f);
    auto y = b.constF(-0.5f);
    uint32_t slot = 0;
    auto store = [&](Builder::Reg r) {
        b.stBuf(0, b.constI(static_cast<int32_t>(slot++)), r);
    };
    store(b.fadd(x, y));
    store(b.fmul(x, y));
    store(b.fdiv(x, y));
    store(b.fabs(y));
    store(b.fsqrt(x));
    store(b.ffma(x, y, x));
    store(b.ffloor(x));
    store(b.fmin(x, y));
    store(b.fmax(x, y));
    store(b.fexp(b.constF(1.0f)));
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(16, 0)};
    runKernel(b.finish(), bufs, 1);
    auto v = [&](size_t i) { return asFloat(bufs[0][i]); };
    EXPECT_FLOAT_EQ(v(0), 1.75f);
    EXPECT_FLOAT_EQ(v(1), -1.125f);
    EXPECT_FLOAT_EQ(v(2), -4.5f);
    EXPECT_FLOAT_EQ(v(3), 0.5f);
    EXPECT_FLOAT_EQ(v(4), 1.5f);
    EXPECT_FLOAT_EQ(v(5), std::fma(2.25f, -0.5f, 2.25f));
    EXPECT_FLOAT_EQ(v(6), 2.0f);
    EXPECT_FLOAT_EQ(v(7), -0.5f);
    EXPECT_FLOAT_EQ(v(8), 2.25f);
    EXPECT_FLOAT_EQ(v(9), std::exp(1.0f));
}

TEST(Interpreter, ComparisonsAndSelect)
{
    Builder b("cmp_ops", 1);
    b.bindStorage(0, ElemType::I32);
    auto two = b.constI(2);
    auto three = b.constI(3);
    auto big = b.constU(0x80000000u); // negative signed, large unsigned
    uint32_t slot = 0;
    auto store = [&](Builder::Reg r) {
        b.stBuf(0, b.constI(static_cast<int32_t>(slot++)), r);
    };
    store(b.ilt(two, three)); // 1
    store(b.ilt(big, two));   // 1 (signed)
    store(b.ult(big, two));   // 0 (unsigned)
    store(b.uge(big, two));   // 1
    store(b.flt(b.constF(1.0f), b.constF(2.0f))); // 1
    store(b.feq(b.constF(1.0f), b.constF(1.0f))); // 1
    store(b.select(b.constI(1), two, three));     // 2
    store(b.select(b.constI(0), two, three));     // 3
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(8, 7)};
    runKernel(b.finish(), bufs, 1);
    EXPECT_EQ(bufs[0][0], 1u);
    EXPECT_EQ(bufs[0][1], 1u);
    EXPECT_EQ(bufs[0][2], 0u);
    EXPECT_EQ(bufs[0][3], 1u);
    EXPECT_EQ(bufs[0][4], 1u);
    EXPECT_EQ(bufs[0][5], 1u);
    EXPECT_EQ(bufs[0][6], 2u);
    EXPECT_EQ(bufs[0][7], 3u);
}

TEST(Interpreter, BuiltinsAcrossWorkgroups)
{
    Builder b("builtins", 4);
    b.bindStorage(0, ElemType::I32);
    b.bindStorage(1, ElemType::I32);
    auto gid = b.globalIdX();
    b.stBuf(0, gid, b.localIdX());
    b.stBuf(1, gid, b.groupIdX());
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(12, 0), std::vector<uint32_t>(12, 0)};
    DispatchResult r = runKernel(b.finish(), bufs, 3);
    for (uint32_t i = 0; i < 12; ++i) {
        EXPECT_EQ(bufs[0][i], i % 4);
        EXPECT_EQ(bufs[1][i], i / 4);
    }
    EXPECT_EQ(r.stats.invocations, 12u);
}

TEST(Interpreter, LoopSumsRange)
{
    Builder b("loop", 1);
    b.bindStorage(0, ElemType::I32);
    b.setPushWords(1);
    auto n = b.ldPush(0);
    auto sum = b.constI(0);
    b.forRange(b.constI(0), n, b.constI(1),
               [&](Builder::Reg i) { b.iaddTo(sum, sum, i); });
    b.stBuf(0, b.constI(0), sum);
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(1, 0)};
    runKernel(b.finish(), bufs, 1, {100});
    EXPECT_EQ(bufs[0][0], 4950u);
}

TEST(Interpreter, WhileLoopWithBreakCondition)
{
    // Collatz steps for 27 = 111.
    Builder b("collatz", 1);
    b.bindStorage(0, ElemType::I32);
    auto v = b.constI(27);
    auto steps = b.constI(0);
    auto one = b.constI(1);
    auto two = b.constI(2);
    auto three = b.constI(3);
    b.whileLoop([&] { return b.igt(v, one); },
                [&] {
                    auto is_odd = b.irem(v, two);
                    auto odd_next = b.iadd(b.imul(v, three), one);
                    auto even_next = b.idiv(v, two);
                    b.movTo(v, b.select(is_odd, odd_next, even_next));
                    b.iaddTo(steps, steps, one);
                });
    b.stBuf(0, b.constI(0), steps);
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(1, 0)};
    runKernel(b.finish(), bufs, 1);
    EXPECT_EQ(bufs[0][0], 111u);
}

TEST(Interpreter, BarrierSharedReduction)
{
    // Classic tree reduction over 64 lanes in shared memory.
    Builder b("reduce", 64);
    b.bindStorage(0, ElemType::I32, true);
    b.bindStorage(1, ElemType::I32);
    b.setSharedWords(64);
    auto lid = b.localIdX();
    auto gid = b.globalIdX();
    b.stShared(lid, b.ldBuf(0, gid));
    b.barrier();
    for (uint32_t s = 32; s >= 1; s /= 2) {
        auto active = b.ilt(lid, b.constI(static_cast<int32_t>(s)));
        b.ifThen(active, [&] {
            auto other = b.iadd(lid, b.constI(static_cast<int32_t>(s)));
            b.stShared(lid, b.iadd(b.ldShared(lid), b.ldShared(other)));
        });
        b.barrier();
    }
    auto is_first = b.ieq(lid, b.constI(0));
    b.ifThen(is_first,
             [&] { b.stBuf(1, b.groupIdX(), b.ldShared(b.constI(0))); });

    std::vector<uint32_t> input(128);
    for (uint32_t i = 0; i < 128; ++i)
        input[i] = i + 1;
    std::vector<std::vector<uint32_t>> bufs = {
        input, std::vector<uint32_t>(2, 0)};
    DispatchResult r = runKernel(b.finish(), bufs, 2);
    EXPECT_EQ(bufs[1][0], 64u * 65u / 2u);             // 1..64
    EXPECT_EQ(bufs[1][1], 128u * 129u / 2u - 2080u);   // 65..128
    EXPECT_GT(r.stats.barriers, 0u);
    EXPECT_GT(r.stats.sharedAccesses, 0u);
}

TEST(Interpreter, AtomicsAddMinMax)
{
    Builder b("atomics", 32);
    b.bindStorage(0, ElemType::I32);
    auto gid = b.globalIdX();
    auto one = b.constI(1);
    auto zero = b.constI(0);
    b.atomIAdd(0, zero, one);
    b.atomIMax(0, one, gid);
    b.atomIMin(0, b.constI(2), gid);
    std::vector<std::vector<uint32_t>> bufs = {{0u, 0u, 0xffffu}};
    DispatchResult r = runKernel(b.finish(), bufs, 4); // 128 lanes
    EXPECT_EQ(bufs[0][0], 128u);
    EXPECT_EQ(bufs[0][1], 127u);
    EXPECT_EQ(bufs[0][2], 0u);
    EXPECT_EQ(r.stats.atomicOps, 3u * 128u);
}

TEST(Interpreter, OutOfBoundsTraps)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Builder b("oob", 1);
    b.bindStorage(0, ElemType::I32);
    b.stBuf(0, b.constI(100), b.constI(1));
    spirv::Module m = b.finish();
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(4, 0)};
    EXPECT_DEATH(runKernel(m, bufs, 1), "out of bounds");
}

TEST(Interpreter, RobustAccessClamps)
{
    Builder b("robust", 1);
    b.bindStorage(0, ElemType::I32);
    b.stBuf(0, b.constI(100), b.constI(42));
    spirv::Module m = b.finish();

    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto kernel = compileKernel(m, dev, Api::Vulkan, &err);
    ASSERT_NE(kernel, nullptr) << err;
    std::vector<uint32_t> buf(4, 0);
    DispatchContext ctx;
    ctx.kernel = kernel.get();
    ctx.buffers.push_back({buf.data(), buf.size()});
    ctx.robustAccess = true;
    ExecutionEngine engine(dev);
    engine.dispatch(ctx);
    EXPECT_EQ(buf[3], 42u); // clamped to the last word
}

TEST(Interpreter, BarrierDivergenceTraps)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Builder b("diverge", 2);
    b.bindStorage(0, ElemType::I32);
    auto lid = b.localIdX();
    auto is_first = b.ieq(lid, b.constI(0));
    b.ifThen(is_first, [&] { b.barrier(); }); // only lane 0 arrives
    b.stBuf(0, lid, lid);
    spirv::Module m = b.finish();
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(4, 0)};
    EXPECT_DEATH(runKernel(m, bufs, 1), "barrier divergence");
}

TEST(Interpreter, DivisionByZeroTraps)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Builder b("div0", 1);
    b.bindStorage(0, ElemType::I32);
    b.stBuf(0, b.constI(0), b.idiv(b.constI(1), b.constI(0)));
    spirv::Module m = b.finish();
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(1, 0)};
    EXPECT_DEATH(runKernel(m, bufs, 1), "division by zero");
}

TEST(Interpreter, PushConstantsReachKernel)
{
    Builder b("push", 1);
    b.bindStorage(0, ElemType::I32);
    b.setPushWords(3);
    b.stBuf(0, b.constI(0), b.ldPush(0));
    b.stBuf(0, b.constI(1), b.ldPush(2));
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(2, 0)};
    runKernel(b.finish(), bufs, 1, {11, 22, 33});
    EXPECT_EQ(bufs[0][0], 11u);
    EXPECT_EQ(bufs[0][1], 33u);
}

TEST(Interpreter, FloatBitsRoundTripThroughBuffers)
{
    Builder b("bits", 1);
    b.bindStorage(0, ElemType::F32, true);
    b.bindStorage(1, ElemType::F32);
    b.stBuf(1, b.constI(0), b.fneg(b.ldBuf(0, b.constI(0))));
    std::vector<std::vector<uint32_t>> bufs = {{asBits(3.5f)}, {0u}};
    runKernel(b.finish(), bufs, 1);
    EXPECT_FLOAT_EQ(asFloat(bufs[1][0]), -3.5f);
}

// --- coalescing / stats ----------------------------------------------------

spirv::Module
stridedKernel()
{
    Builder b("stride_probe", 256);
    b.bindStorage(0, ElemType::F32, true);
    b.bindStorage(1, ElemType::F32);
    b.setPushWords(1);
    auto gid = b.globalIdX();
    auto idx = b.imul(gid, b.ldPush(0));
    auto guard = b.feq(b.ldBuf(0, idx), b.constF(1e30f));
    b.ifThen(guard, [&] { b.stBuf(1, b.constI(0), b.constF(0.0f)); });
    return b.finish();
}

double
transactionsFor(uint32_t stride)
{
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(256 * 32 * 4, 0),
        std::vector<uint32_t>(1, 0)};
    DispatchResult r = runKernel(stridedKernel(), bufs, 4, {stride});
    return r.stats.dramTransactions;
}

TEST(Coalescing, TransactionsScaleWithStride)
{
    double tx1 = transactionsFor(1);
    double tx4 = transactionsFor(4);
    double tx16 = transactionsFor(16);
    double tx32 = transactionsFor(32);
    // Unit stride: 32 lanes x 4 B = 2 lines of 64 B per warp.
    EXPECT_NEAR(tx1, 1024.0 * 2.0 / 32.0, 1.0);
    EXPECT_NEAR(tx4 / tx1, 4.0, 0.2);
    // At stride 16 (64 B) every lane owns a line; beyond that flat.
    EXPECT_NEAR(tx16 / tx1, 16.0, 0.5);
    EXPECT_NEAR(tx32 / tx16, 1.0, 0.05);
}

TEST(Coalescing, PromotionMovesTrafficOnChip)
{
    Builder b("promo", 256);
    b.bindStorage(0, ElemType::F32, true);
    b.bindStorage(1, ElemType::F32);
    auto gid = b.globalIdX();
    auto v = b.ldBuf(0, gid, spirv::MemFlagPromoteHint);
    b.stBuf(1, gid, v);
    spirv::Module m = b.finish();

    std::vector<std::vector<uint32_t>> cl_bufs = {
        std::vector<uint32_t>(512, 0), std::vector<uint32_t>(512, 0)};
    // OpenCL on the GTX honours the hint; Vulkan does not.
    DispatchResult cl = runKernel(m, cl_bufs, 2, {}, Api::OpenCl);
    std::vector<std::vector<uint32_t>> vk_bufs = {
        std::vector<uint32_t>(512, 0), std::vector<uint32_t>(512, 0)};
    DispatchResult vk = runKernel(m, vk_bufs, 2, {}, Api::Vulkan);

    EXPECT_EQ(cl.stats.promotedAccesses, 512u);
    EXPECT_EQ(vk.stats.promotedAccesses, 0u);
    EXPECT_GT(vk.stats.dramAccesses, cl.stats.dramAccesses);
}

TEST(Stats, LaneCyclesAndAccessesCounted)
{
    Builder b("stats", 64);
    b.bindStorage(0, ElemType::I32);
    auto gid = b.globalIdX();
    b.stBuf(0, gid, b.iadd(gid, gid));
    std::vector<std::vector<uint32_t>> bufs = {
        std::vector<uint32_t>(128, 0)};
    DispatchResult r = runKernel(b.finish(), bufs, 2);
    EXPECT_EQ(r.stats.invocations, 128u);
    EXPECT_EQ(r.stats.dramAccesses, 128u);
    EXPECT_GT(r.stats.laneCycles, 128u);
    EXPECT_GT(r.kernelNs, 0.0);
}

// --- micro-op lowering -----------------------------------------------------

/** A kernel exercising every fusion family: compare+branch (loop),
 *  const+ALU, address+load/store, mul+add indexing, shared staging. */
spirv::Module
fusionKernel()
{
    Builder b("fusion", 16);
    b.bindStorage(0, ElemType::I32, true);
    b.bindStorage(1, ElemType::I32);
    b.setSharedWords(32);
    auto lid = b.localIdX();
    auto base = b.imul(b.groupIdX(), b.constI(16));
    auto g = b.iadd(base, lid);
    b.stShared(b.iadd(lid, b.constI(16)), b.ldBuf(0, g));
    b.barrier();
    auto sum = b.constI(0);
    b.forRange(b.constI(0), b.constI(16), b.constI(1),
               [&](Builder::Reg i) {
                   auto v = b.ldShared(b.iadd(i, b.constI(16)));
                   b.iaddTo(sum, sum, v);
               });
    auto scaled = b.imul(sum, b.constI(3));
    b.stBuf(1, g, b.iadd(scaled, lid));
    return b.finish();
}

DispatchStats
runFusionKernel(const LowerOptions &opt, std::vector<uint32_t> &out,
                double *kernel_ns)
{
    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto kernel = compileKernel(fusionKernel(), dev, Api::Vulkan, &err);
    if (!kernel)
        panic("compile failed: %s", err.c_str());
    lowerKernel(*kernel, opt); // re-lower with the requested options

    std::vector<uint32_t> in(64);
    for (uint32_t i = 0; i < 64; ++i)
        in[i] = i * 7 + 1;
    out.assign(64, 0);
    DispatchContext ctx;
    ctx.kernel = kernel.get();
    ctx.groups[0] = 4;
    ctx.buffers.push_back({in.data(), in.size()});
    ctx.buffers.push_back({out.data(), out.size()});
    ExecutionEngine engine(dev);
    DispatchResult r = engine.dispatch(ctx);
    if (kernel_ns)
        *kernel_ns = r.kernelNs;
    return r.stats;
}

TEST(MicroOp, FusedExecutionMatchesUnfused)
{
    std::vector<uint32_t> fused_out, plain_out;
    double fused_ns = 0, plain_ns = 0;
    DispatchStats fused = runFusionKernel({}, fused_out, &fused_ns);
    DispatchStats plain =
        runFusionKernel(LowerOptions::noFusion(), plain_out, &plain_ns);

    EXPECT_EQ(fused_out, plain_out);
    EXPECT_EQ(fused.laneCycles, plain.laneCycles);
    EXPECT_EQ(fused.invocations, plain.invocations);
    EXPECT_EQ(fused.dramAccesses, plain.dramAccesses);
    EXPECT_EQ(fused.sharedAccesses, plain.sharedAccesses);
    EXPECT_EQ(fused.barriers, plain.barriers);
    EXPECT_EQ(fused.dramTransactions, plain.dramTransactions);
    EXPECT_EQ(fused_ns, plain_ns);
}

TEST(MicroOp, LoweringActuallyFuses)
{
    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto kernel = compileKernel(fusionKernel(), dev, Api::Vulkan, &err);
    ASSERT_NE(kernel, nullptr) << err;
    EXPECT_GT(kernel->micro->fusedPairs, 0u);
    EXPECT_LT(kernel->micro->ops.size(), kernel->insns.size());

    lowerKernel(*kernel, LowerOptions::noFusion());
    EXPECT_EQ(kernel->micro->fusedPairs, 0u);
}

TEST(MicroOp, RobustPathMatchesFastPath)
{
    // robustAccess forces the instrumented lane-major executor for
    // every workgroup; an in-bounds kernel must produce identical
    // results either way (op-major lockstep vs lane-major order).
    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto kernel = compileKernel(fusionKernel(), dev, Api::Vulkan, &err);
    ASSERT_NE(kernel, nullptr) << err;

    std::vector<uint32_t> in(64);
    for (uint32_t i = 0; i < 64; ++i)
        in[i] = i * 3 + 2;
    std::vector<uint32_t> out_fast(64, 0), out_robust(64, 0);
    for (bool robust : {false, true}) {
        std::vector<uint32_t> in_copy = in;
        DispatchContext ctx;
        ctx.kernel = kernel.get();
        ctx.groups[0] = 4;
        ctx.buffers.push_back({in_copy.data(), in_copy.size()});
        std::vector<uint32_t> &out = robust ? out_robust : out_fast;
        ctx.buffers.push_back({out.data(), out.size()});
        ctx.robustAccess = robust;
        ExecutionEngine engine(dev);
        engine.dispatch(ctx);
    }
    EXPECT_EQ(out_fast, out_robust);
}

TEST(MicroOp, AtomicMinMaxIntLimits)
{
    // CAS-loop edge cases around the INT32 extremes: the loop must
    // terminate and return the pre-op value in all of them.
    Builder b("atom_limits", 1);
    b.bindStorage(0, ElemType::I32);
    b.bindStorage(1, ElemType::I32);
    auto i0 = b.constI(0);
    auto i1 = b.constI(1);
    auto i2 = b.constI(2);
    auto int_min = b.constU(0x80000000u);
    auto int_max = b.constU(0x7fffffffu);
    // word0 = INT32_MAX: min with INT32_MIN stores INT32_MIN.
    b.stBuf(1, i0, b.atomIMin(0, i0, int_min));
    // word1 = INT32_MIN: max with INT32_MAX stores INT32_MAX.
    b.stBuf(1, i1, b.atomIMax(0, i1, int_max));
    // word2 = 5: min with INT32_MAX is a no-op (early CAS exit).
    b.stBuf(1, i2, b.atomIMin(0, i2, int_max));

    std::vector<std::vector<uint32_t>> bufs = {
        {0x7fffffffu, 0x80000000u, 5u}, std::vector<uint32_t>(3, 99u)};
    DispatchResult r = runKernel(b.finish(), bufs, 1);
    EXPECT_EQ(bufs[0][0], 0x80000000u);
    EXPECT_EQ(bufs[0][1], 0x7fffffffu);
    EXPECT_EQ(bufs[0][2], 5u);
    EXPECT_EQ(bufs[1][0], 0x7fffffffu); // old values
    EXPECT_EQ(bufs[1][1], 0x80000000u);
    EXPECT_EQ(bufs[1][2], 5u);
    EXPECT_EQ(r.stats.atomicOps, 3u);
}

TEST(MicroOp, NeverWrittenRegisterReadsZero)
{
    // A register that is never written must still read as 0 (the
    // pre-lowering zero-init semantics): definite assignment fails, so
    // the register zero-fill must be retained.
    Builder b("unwritten", 4);
    b.bindStorage(0, ElemType::I32);
    auto ghost = b.newReg();
    b.stBuf(0, b.localIdX(), b.iadd(ghost, ghost));
    spirv::Module m = b.finish();

    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto kernel = compileKernel(m, dev, Api::Vulkan, &err);
    ASSERT_NE(kernel, nullptr) << err;
    EXPECT_FALSE(kernel->micro->skipRegZeroInit);

    std::vector<uint32_t> out(4, 0xdeadbeefu);
    DispatchContext ctx;
    ctx.kernel = kernel.get();
    ctx.buffers.push_back({out.data(), out.size()});
    ExecutionEngine engine(dev);
    engine.dispatch(ctx);
    for (uint32_t v : out)
        EXPECT_EQ(v, 0u);
}

TEST(MicroOp, ConditionallyWrittenRegisterReadsZeroEveryWorkgroup)
{
    // Only workgroup 0 writes the register; later workgroups reuse the
    // same interpreter, so they must observe the zero-init — a
    // wrongly-skipped zero-fill would leak 42 from workgroup 0 into
    // every following workgroup here.
    Builder b("cond_write", 4);
    b.bindStorage(0, ElemType::I32);
    auto v = b.newReg();
    b.ifThen(b.ieq(b.groupIdX(), b.constI(0)),
             [&] { b.constITo(v, 42); });
    b.stBuf(0, b.globalIdX(), v);
    spirv::Module m = b.finish();

    const DeviceSpec &dev = gtx1050ti();
    std::string err;
    auto kernel = compileKernel(m, dev, Api::Vulkan, &err);
    ASSERT_NE(kernel, nullptr) << err;
    EXPECT_FALSE(kernel->micro->skipRegZeroInit);

    std::vector<uint32_t> out(32, 7u);
    DispatchContext ctx;
    ctx.kernel = kernel.get();
    ctx.groups[0] = 8;
    ctx.buffers.push_back({out.data(), out.size()});
    ExecutionEngine engine(dev);
    engine.dispatch(ctx);
    for (uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], i < 4 ? 42u : 0u) << i;
}

TEST(MicroOp, WriteBeforeReadKernelsSkipZeroFill)
{
    const DeviceSpec &dev = gtx1050ti();
    Builder b("wbr", 64);
    b.bindStorage(0, ElemType::I32);
    auto gid = b.globalIdX();
    b.stBuf(0, gid, b.iadd(gid, gid));
    std::string err;
    auto kernel = compileKernel(b.finish(), dev, Api::Vulkan, &err);
    ASSERT_NE(kernel, nullptr) << err;
    EXPECT_TRUE(kernel->micro->skipRegZeroInit);
}

// ---------------------------------------------------------------------------
// Compile-cache regression: a cache hit must reproduce the uncached
// compile bit-for-bit — same lowered program, same simulated times —
// for every kernel in the library, and near-identical devices must
// never alias each other's cache entries.
// ---------------------------------------------------------------------------

/** Save/restore the process-global cache switch around a test. */
class CompileCacheGuard
{
  public:
    CompileCacheGuard() : wasEnabled(CompileCache::globalEnabled()) {}
    ~CompileCacheGuard()
    {
        CompileCache::global().clear();
        CompileCache::setGlobalEnabled(wasEnabled ? 1 : 0);
    }

  private:
    bool wasEnabled;
};

/** Field-wise bit-identity of two compiled kernels. */
void
expectIdenticalCompiles(const CompiledKernel &a, const CompiledKernel &b,
                        const std::string &what)
{
    EXPECT_EQ(a.api, b.api) << what;
    EXPECT_EQ(a.promoted, b.promoted) << what;
    EXPECT_EQ(a.codeQualityEff, b.codeQualityEff) << what;
    EXPECT_EQ(a.compileNs, b.compileNs) << what;
    EXPECT_EQ(a.insns.size(), b.insns.size()) << what;
    EXPECT_EQ(a.siteOfInsn, b.siteOfInsn) << what;
    EXPECT_EQ(a.numSites, b.numSites) << what;
    EXPECT_EQ(a.sitePromote, b.sitePromote) << what;

    const MicroKernel &ma = *a.micro, &mb = *b.micro;
    ASSERT_EQ(ma.ops.size(), mb.ops.size()) << what;
    if (!ma.ops.empty())
        EXPECT_EQ(std::memcmp(ma.ops.data(), mb.ops.data(),
                              ma.ops.size() * sizeof(MicroOp)),
                  0)
            << what;
    ASSERT_EQ(ma.templateOps.size(), mb.templateOps.size()) << what;
    if (!ma.templateOps.empty())
        EXPECT_EQ(std::memcmp(ma.templateOps.data(),
                              mb.templateOps.data(),
                              ma.templateOps.size() * sizeof(MicroOp)),
                  0)
            << what;
    ASSERT_EQ(ma.supers.size(), mb.supers.size()) << what;
    if (!ma.supers.empty())
        EXPECT_EQ(std::memcmp(ma.supers.data(), mb.supers.data(),
                              ma.supers.size() * sizeof(SuperOp)),
                  0)
            << what;
    EXPECT_EQ(ma.templateDsts, mb.templateDsts) << what;
    EXPECT_EQ(ma.costFrom, mb.costFrom) << what;
    EXPECT_EQ(ma.hoistedCost, mb.hoistedCost) << what;
    EXPECT_EQ(ma.skipRegZeroInit, mb.skipRegZeroInit) << what;
    EXPECT_EQ(ma.hasBarrier, mb.hasBarrier) << what;
    EXPECT_EQ(ma.hasBranches, mb.hasBranches) << what;
    EXPECT_EQ(ma.hasAtomics, mb.hasAtomics) << what;
    EXPECT_EQ(ma.fusedPairs, mb.fusedPairs) << what;
}

TEST(CompileCacheRegression, HitsBitIdenticalAcrossKernelRegistry)
{
    CompileCacheGuard guard;
    const DeviceSpec &dev = gtx1050ti();

    for (const auto &[name, build] : kernels::kernelRegistry()) {
        spirv::Module m = build();
        for (Api api : {Api::Vulkan, Api::OpenCl, Api::Cuda}) {
            // Ground truth with the cache off.
            CompileCache::setGlobalEnabled(0);
            std::string err;
            auto uncached = compileKernel(m, dev, api, &err);
            ASSERT_NE(uncached, nullptr) << name << ": " << err;

            // Cold compile (miss + insert), then warm compile (hit).
            CompileCache::setGlobalEnabled(1);
            CompileCache::global().clear();
            auto cold = compileKernel(m, dev, api, &err);
            ASSERT_NE(cold, nullptr) << name << ": " << err;
            auto warm = compileKernel(m, dev, api, &err);
            ASSERT_NE(warm, nullptr) << name << ": " << err;
            EXPECT_EQ(CompileCache::global().stats().hits, 1u) << name;

            std::string what =
                name + "/" + std::to_string(static_cast<int>(api));
            expectIdenticalCompiles(*uncached, *cold, what + " cold");
            expectIdenticalCompiles(*uncached, *warm, what + " warm");
        }
    }
}

TEST(CompileCacheRegression, WarmHitDispatchesBitIdentically)
{
    CompileCacheGuard guard;
    const DeviceSpec &dev = gtx1050ti();
    spirv::Module m = kernels::buildVecAdd();
    constexpr uint32_t n = 512, groups = 2;

    auto runOnce = [&](bool useCache) {
        CompileCache::setGlobalEnabled(useCache ? 1 : 0);
        std::string err;
        auto kernel = compileKernel(m, dev, Api::Vulkan, &err);
        if (!kernel)
            panic("compile failed: %s", err.c_str());
        std::vector<std::vector<uint32_t>> bufs(3);
        for (uint32_t i = 0; i < n; ++i) {
            bufs[0].push_back(asBits(0.5f * (float)i));
            bufs[1].push_back(asBits(2.0f));
        }
        bufs[2].assign(n, 0);
        DispatchContext ctx;
        ctx.kernel = kernel.get();
        ctx.groups[0] = groups;
        for (auto &buf : bufs)
            ctx.buffers.push_back({buf.data(), buf.size()});
        std::vector<uint32_t> push{n};
        ctx.push = push.data();
        ctx.pushWords = 1;
        ExecutionEngine engine(dev);
        DispatchResult r = engine.dispatch(ctx);
        return std::make_tuple(bufs[2], r.kernelNs, r.stats);
    };

    auto baseline = runOnce(false);
    CompileCache::global().clear();
    auto cold = runOnce(true); // populates the cache
    auto warm = runOnce(true); // served from the cache
    ASSERT_GE(CompileCache::global().stats().hits, 1u);

    EXPECT_EQ(std::get<0>(cold), std::get<0>(baseline));
    EXPECT_EQ(std::get<0>(warm), std::get<0>(baseline));
    EXPECT_EQ(std::get<1>(cold), std::get<1>(baseline));
    EXPECT_EQ(std::get<1>(warm), std::get<1>(baseline));
    EXPECT_TRUE(std::get<2>(cold) == std::get<2>(baseline));
    EXPECT_TRUE(std::get<2>(warm) == std::get<2>(baseline));
}

TEST(CompileCacheRegression, NearIdenticalDevicesDoNotAlias)
{
    CompileCacheGuard guard;
    CompileCache::setGlobalEnabled(1);
    CompileCache::global().clear();

    // Two devices differing ONLY in one driver-profile scalar.
    const DeviceSpec &dev = gtx1050ti();
    DeviceSpec tweaked = dev;
    tweaked.apis[static_cast<int>(Api::Vulkan)].codeQuality = 0.5;

    spirv::Module m = kernels::buildVecAdd();
    EXPECT_NE(makeCompileCacheKey(m, dev, Api::Vulkan),
              makeCompileCacheKey(m, tweaked, Api::Vulkan));

    std::string err;
    auto base = compileKernel(m, dev, Api::Vulkan, &err);
    ASSERT_NE(base, nullptr) << err;
    auto base2 = compileKernel(m, dev, Api::Vulkan, &err);
    ASSERT_NE(base2, nullptr) << err;
    EXPECT_EQ(CompileCache::global().stats().hits, 1u);

    // The tweaked device must MISS (fresh compile with its own
    // profile), not pick up the cached gtx1050ti artefact.
    auto other = compileKernel(m, tweaked, Api::Vulkan, &err);
    ASSERT_NE(other, nullptr) << err;
    EXPECT_EQ(CompileCache::global().stats().hits, 1u);
    EXPECT_EQ(CompileCache::global().stats().entries, 2u);
    EXPECT_EQ(other->codeQualityEff, 0.5);
    EXPECT_NE(other->codeQualityEff, base->codeQualityEff);

    // Same API, different entry per API too.
    auto cl = compileKernel(m, dev, Api::OpenCl, &err);
    ASSERT_NE(cl, nullptr) << err;
    EXPECT_EQ(CompileCache::global().stats().entries, 3u);
}

} // namespace
} // namespace vcb::sim

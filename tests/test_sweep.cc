/**
 * @file
 * Sweep-executor tests: byte-identity of the report book at any job
 * count, plan-order merge under adversarial completion schedules, and
 * per-worker device-registry isolation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "harness/report_book.h"
#include "harness/sweep.h"
#include "sim/device.h"
#include "sim/engine.h"

namespace vcb::harness {
namespace {

// --- resolveSweepJobs -------------------------------------------------------

TEST(ResolveSweepJobs, ExplicitRequestWins)
{
    setenv("VCB_REPORT_JOBS", "7", 1);
    EXPECT_EQ(resolveSweepJobs(3), 3u);
    unsetenv("VCB_REPORT_JOBS");
}

TEST(ResolveSweepJobs, EnvFallback)
{
    setenv("VCB_REPORT_JOBS", "5", 1);
    EXPECT_EQ(resolveSweepJobs(0), 5u);
    unsetenv("VCB_REPORT_JOBS");
}

TEST(ResolveSweepJobs, InvalidEnvFallsBackToHardware)
{
    setenv("VCB_REPORT_JOBS", "banana", 1);
    unsigned jobs = resolveSweepJobs(0);
    unsetenv("VCB_REPORT_JOBS");
    EXPECT_GE(jobs, 1u);
}

// --- plan-order merge -------------------------------------------------------

/** Cells complete in deliberately inverted order (early cells sleep
 *  longest); slot writes must still land at plan positions and the
 *  ledger must cover every cell exactly once. */
TEST(SweepPlan, MergesInPlanOrderUnderShuffledCompletion)
{
    constexpr size_t kCells = 24;
    std::vector<size_t> slots(kCells, ~size_t{0});
    std::atomic<size_t> completions{0};
    std::vector<size_t> completion_order(kCells, 0);

    SweepOptions opts;
    opts.jobs = 4;
    SweepStats stats = runSweepPlan(
        kCells,
        [&](size_t cell) {
            // Early plan entries finish last.
            std::this_thread::sleep_for(
                std::chrono::microseconds((kCells - cell) * 200));
            slots[cell] = cell;
            completion_order[completions.fetch_add(1)] = cell;
        },
        opts);

    EXPECT_EQ(stats.jobs, 4u);
    EXPECT_EQ(stats.cells, kCells);
    ASSERT_EQ(stats.cellWallMs.size(), kCells);
    ASSERT_EQ(stats.cellSimMs.size(), kCells);
    ASSERT_EQ(stats.cellWorker.size(), kCells);
    for (size_t i = 0; i < kCells; ++i) {
        // The merge is positional: cell i's result sits at slot i no
        // matter when (or on which worker) it completed.
        EXPECT_EQ(slots[i], i);
        EXPECT_LT(stats.cellWorker[i], 4u);
        EXPECT_GE(stats.cellWallMs[i], 0.0);
    }
    EXPECT_EQ(completions.load(), kCells);
}

/** jobs=1 must also run on a spawned worker (not the caller), so the
 *  execution environment is identical at every job count. */
TEST(SweepPlan, SingleJobRunsOffCallerThread)
{
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id cell_thread;
    SweepOptions opts;
    opts.jobs = 1;
    SweepStats stats = runSweepPlan(
        1, [&](size_t) { cell_thread = std::this_thread::get_id(); },
        opts);
    EXPECT_EQ(stats.jobs, 1u);
    EXPECT_NE(cell_thread, caller);
}

// --- per-worker registry isolation -----------------------------------------

TEST(SweepPlan, WorkersGetPrivateRegistrySessions)
{
    // A registry the caller does not have: cells must see it (the
    // sweep installs the snapshot per worker), and each worker must
    // own a private copy (distinct object identity per worker).
    std::vector<sim::DeviceSpec> custom = {sim::gtx1050ti()};
    custom[0].name = "sweep-isolation-probe";

    const std::vector<sim::DeviceSpec> &caller_reg =
        sim::activeDeviceRegistry();
    const sim::DeviceSpec *caller_first =
        caller_reg.empty() ? nullptr : &caller_reg[0];

    constexpr size_t kCells = 16;
    std::mutex mtx;
    std::vector<const void *> seen;
    bool all_named = true;

    SweepOptions opts;
    opts.jobs = 4;
    opts.devices = custom;
    SweepStats stats = runSweepPlan(
        kCells,
        [&](size_t) {
            const std::vector<sim::DeviceSpec> &reg =
                sim::activeDeviceRegistry();
            std::lock_guard<std::mutex> lk(mtx);
            if (reg.size() != 1 ||
                reg[0].name != "sweep-isolation-probe")
                all_named = false;
            seen.push_back(&reg[0]);
        },
        opts);

    EXPECT_TRUE(all_named);
    // No cell saw the caller's registry, and no two workers shared a
    // registry object.
    std::set<const void *> addrs;
    for (const void *addr : seen) {
        addrs.insert(addr);
        EXPECT_NE(addr, static_cast<const void *>(caller_first));
    }
    std::set<unsigned> workers(stats.cellWorker.begin(),
                               stats.cellWorker.end());
    // Every distinct worker that ran cells saw a distinct private
    // copy: one registry address per participating worker.
    EXPECT_EQ(addrs.size(), workers.size());

    // The caller's registry is untouched after the sweep.
    EXPECT_EQ(&sim::activeDeviceRegistry(), &caller_reg);
}

// --- report-book byte identity ---------------------------------------------

/** The tentpole acceptance property: the full quick book — Markdown
 *  render, every per-device CSV and the deterministic suite-JSON
 *  lines — is byte-identical at jobs=1 and jobs=4.  This runs in the
 *  sanitize job too (smoke label), so data races in the sweep would
 *  surface here under TSan/ASan. */
TEST(SweepBook, QuickBookByteIdenticalAcrossJobCounts)
{
    const std::vector<sim::DeviceSpec> &devices =
        sim::activeDeviceRegistry();
    ASSERT_FALSE(devices.empty());

    ReportBook book1 = buildReportBook(devices, /*dry=*/true, 1);
    ReportBook book4 = buildReportBook(devices, /*dry=*/true, 4);
    EXPECT_EQ(book1.jobs, 1u);
    EXPECT_EQ(book4.jobs, 4u);
    EXPECT_EQ(book1.cells, book4.cells);
    EXPECT_GT(book1.cells, 0u);

    EXPECT_EQ(renderResultsBook(book1), renderResultsBook(book4));
    ASSERT_EQ(book1.devices.size(), book4.devices.size());
    for (size_t i = 0; i < book1.devices.size(); ++i)
        EXPECT_EQ(deviceCsv(book1.devices[i]),
                  deviceCsv(book4.devices[i]));
    EXPECT_EQ(suiteJsonFromBook(book1), suiteJsonFromBook(book4));
}

} // namespace
} // namespace vcb::harness

/** @file Serve layer: wire-protocol accept/reject, compile-cache
 *  keying/eviction/immutability, concurrent-client bit-identity
 *  against the serial golden path, per-session device-registry
 *  isolation and graceful drain. */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "serve/serve.h"
#include "sim/compile_cache.h"
#include "sim/kernel.h"
#include "spirv/builder.h"

namespace vcb::serve {
namespace {

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

Request
parseOk(const std::string &line)
{
    Request req;
    std::string err;
    EXPECT_TRUE(parseRequestLine(line, &req, &err)) << line << ": "
                                                    << err;
    return req;
}

std::string
parseErr(const std::string &line)
{
    Request req;
    std::string err;
    EXPECT_FALSE(parseRequestLine(line, &req, &err)) << line;
    return err;
}

TEST(Protocol, RunRequestFieldsDecode)
{
    Request r = parseOk(
        "{\"id\": \"r1\", \"bench\": \"bfs\", \"size\": 2, "
        "\"api\": \"cl\", \"device\": \"rx560\", "
        "\"strategy\": \"batched\", \"queues\": 3}");
    EXPECT_EQ(r.kind, Request::Kind::Run);
    EXPECT_EQ(r.id, "r1");
    EXPECT_EQ(r.bench, "bfs");
    EXPECT_EQ(r.sizeIdx, 2);
    EXPECT_EQ(r.api, "cl");
    EXPECT_EQ(r.device, "rx560");
    EXPECT_EQ(r.strategy, "batched");
    EXPECT_EQ(r.queues, 3u);

    // Size as a label string instead of an index.
    Request lbl =
        parseOk("{\"bench\": \"nw\", \"size\": \"64K\"}");
    EXPECT_EQ(lbl.sizeLabel, "64K");
    EXPECT_EQ(lbl.sizeIdx, 0);

    // Defaults when omitted.
    Request d = parseOk("{\"bench\": \"lud\"}");
    EXPECT_EQ(d.device, "gtx1050ti");
    EXPECT_EQ(d.api, "vulkan");
    EXPECT_EQ(d.queues, 0u);
}

TEST(Protocol, ControlCommandsDecode)
{
    EXPECT_EQ(parseOk("{\"cmd\": \"stats\"}").kind,
              Request::Kind::Stats);
    EXPECT_EQ(parseOk("{\"cmd\": \"drain\", \"id\": \"d\"}").kind,
              Request::Kind::Drain);
    EXPECT_EQ(parseOk("{\"cmd\": \"shutdown\"}").kind,
              Request::Kind::Shutdown);
    EXPECT_EQ(parseOk("{\"cmd\": \"cache_clear\"}").kind,
              Request::Kind::CacheClear);
    Request c = parseOk("{\"cmd\": \"cache\", \"enabled\": false}");
    EXPECT_EQ(c.kind, Request::Kind::Cache);
    EXPECT_FALSE(c.cacheEnabled);
}

TEST(Protocol, MalformedLinesAreRejectedWithReasons)
{
    EXPECT_NE(parseErr("").find("expected '{'"), std::string::npos);
    EXPECT_NE(parseErr("not json").find("expected '{'"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"bench\": \"bfs\"} x")
                  .find("trailing"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"bench\": \"bfs\", \"typo\": 1}")
                  .find("unknown key"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"bench\": {\"nested\": 1}}")
                  .find("nested"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"bench\": [\"bfs\"]}").find("nested"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"bench\": null}").find("null"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"bench\": \"a\", \"bench\": \"b\"}")
                  .find("duplicate"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"id\": \"x\"}").find("missing 'bench'"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"cmd\": \"reboot\"}")
                  .find("unknown command"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"bench\": \"bfs\", \"size\": -1}")
                  .find("integer"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"bench\": \"bfs\", \"size\": 1.5}")
                  .find("integer"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"cmd\": \"stats\", \"bench\": \"bfs\"}")
                  .find("unknown key"),
              std::string::npos);
    // Unterminated string and bad escapes.
    EXPECT_FALSE(parseErr("{\"bench\": \"bfs").empty());
    EXPECT_FALSE(parseErr("{\"bench\": \"\\q\"}").empty());
}

TEST(Protocol, ResponseRoundTripsThroughFlatParser)
{
    Response r;
    r.type = "result";
    r.id = "with \"quotes\" and\nnewline";
    r.ok = true;
    r.bench = "bfs";
    r.device = "GTX";
    r.api = "Vulkan";
    r.strategy = "batched";
    r.size = "64K";
    r.kernelRegionNs = 123.5;
    r.launches = 7;
    r.validated = true;
    r.resultHash = 0xdeadbeefcafe1234ull;
    std::string line = serializeResponse(r);

    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseFlatObject(line, &obj, &err)) << line << ": "
                                                   << err;
    auto get = [&](const char *key) -> const JsonField & {
        for (const auto &kv : obj)
            if (kv.first == key)
                return kv.second;
        ADD_FAILURE() << "missing key " << key;
        static JsonField none;
        return none;
    };
    EXPECT_EQ(get("id").str, r.id);
    EXPECT_TRUE(get("ok").b);
    EXPECT_EQ(get("result_hash").str, "deadbeefcafe1234");
    EXPECT_EQ(get("launches").num, 7);
}

// ---------------------------------------------------------------------------
// Compile cache: keying, eviction, immutability
// ---------------------------------------------------------------------------

spirv::Module
tinyKernel(const std::string &name, uint32_t imm)
{
    spirv::Builder b(name, 32);
    b.bindStorage(0, spirv::ElemType::U32);
    auto gid = b.globalIdX();
    b.stBuf(0, gid, b.iadd(gid, b.constU(imm)));
    b.ret();
    return b.finish();
}

sim::CompileCacheKey
keyFor(const spirv::Module &m)
{
    return sim::makeCompileCacheKey(m, sim::gtx1050ti(),
                                    sim::Api::Vulkan);
}

std::unique_ptr<sim::CompiledKernel>
compile(const spirv::Module &m)
{
    std::string err;
    auto k = sim::compileKernel(m, sim::gtx1050ti(), sim::Api::Vulkan,
                                &err);
    EXPECT_NE(k, nullptr) << err;
    return k;
}

TEST(CompileCacheUnit, ContentKeyedLookupAndLru)
{
    // Single shard, two entries: deterministic LRU.
    sim::CompileCache cache(2, 1);
    auto m1 = tinyKernel("cc_k1", 1);
    auto m2 = tinyKernel("cc_k2", 2);
    auto m3 = tinyKernel("cc_k3", 3);
    auto k1 = compile(m1), k2 = compile(m2), k3 = compile(m3);

    EXPECT_EQ(cache.lookup(keyFor(m1)), nullptr); // cold miss
    cache.insert(keyFor(m1), *k1);
    cache.insert(keyFor(m2), *k2);

    // Refresh k1, then insert k3: the LRU victim must be k2.
    ASSERT_NE(cache.lookup(keyFor(m1)), nullptr);
    cache.insert(keyFor(m3), *k3);
    EXPECT_NE(cache.lookup(keyFor(m1)), nullptr);
    EXPECT_EQ(cache.lookup(keyFor(m2)), nullptr);
    EXPECT_NE(cache.lookup(keyFor(m3)), nullptr);

    sim::CompileCacheStats s = cache.stats();
    EXPECT_EQ(s.insertions, 3u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.hits, 3u);
    EXPECT_EQ(s.misses, 2u);

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.lookup(keyFor(m1)), nullptr);
}

TEST(CompileCacheUnit, HashComponentCollisionsDoNotAlias)
{
    // Keys agreeing in one 64-bit component but differing in another
    // are distinct entries: equality compares the whole key, so even
    // a real FNV collision in moduleHash cannot alias entries from
    // different devices/configs.
    sim::CompileCache cache(8, 1);
    auto m1 = tinyKernel("cc_col1", 1);
    auto m2 = tinyKernel("cc_col2", 2);
    auto k1 = compile(m1), k2 = compile(m2);

    sim::CompileCacheKey a = keyFor(m1);
    sim::CompileCacheKey b = a;
    b.deviceFp ^= 0x1234; // same moduleHash+config, "other device"
    sim::CompileCacheKey c = a;
    c.config ^= 1; // same hashes, different lowering config

    cache.insert(a, *k1);
    cache.insert(b, *k2);
    EXPECT_EQ(cache.stats().entries, 2u);

    auto got_a = cache.lookup(a);
    auto got_b = cache.lookup(b);
    ASSERT_NE(got_a, nullptr);
    ASSERT_NE(got_b, nullptr);
    EXPECT_EQ(got_a->module.name, "cc_col1");
    EXPECT_EQ(got_b->module.name, "cc_col2");
    EXPECT_EQ(cache.lookup(c), nullptr);
}

TEST(CompileCacheUnit, NearIdenticalDevicesGetDistinctFingerprints)
{
    sim::DeviceSpec dev = sim::gtx1050ti();
    uint64_t base = sim::deviceFingerprint(dev);

    sim::DeviceSpec tweaked = dev;
    tweaked.apis[(int)sim::Api::Vulkan].codeQuality *= 1.0000001;
    EXPECT_NE(sim::deviceFingerprint(tweaked), base);

    sim::DeviceSpec renamed = dev;
    renamed.name += "-b";
    EXPECT_NE(sim::deviceFingerprint(renamed), base);

    // Fingerprint is content-addressed: a copy is identical.
    sim::DeviceSpec copy = dev;
    EXPECT_EQ(sim::deviceFingerprint(copy), base);
}

TEST(CompileCacheUnit, LookupsShareProgramButNeverAlias)
{
    sim::CompileCache cache(4, 1);
    auto m = tinyKernel("cc_iso", 9);
    auto k = compile(m);
    cache.insert(keyFor(m), *k);

    auto first = cache.lookup(keyFor(m));
    auto second = cache.lookup(keyFor(m));
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);

    // Hits share one immutable program: no per-hit deep copy of the
    // micro-op stream.
    EXPECT_EQ(first->micro.get(), second->micro.get());
    size_t ops = first->micro->ops.size();

    // Re-lowering a hit swaps in a fresh program (copy-on-write); the
    // program other clients hold is untouched.
    const sim::MicroKernel *shared_prog = second->micro.get();
    sim::lowerKernel(*first, sim::LowerOptions::noFusion());
    EXPECT_NE(first->micro.get(), shared_prog);
    EXPECT_EQ(second->micro.get(), shared_prog);
    EXPECT_EQ(second->micro->ops.size(), ops);

    // Scalar fields are still per-lookup copies.
    first->codeQualityEff = -1;
    auto third = cache.lookup(keyFor(m));
    ASSERT_NE(third, nullptr);
    EXPECT_EQ(third->codeQualityEff, k->codeQualityEff);
}

// ---------------------------------------------------------------------------
// Broker: concurrent bit-identity, isolation, drain
// ---------------------------------------------------------------------------

std::vector<Request>
smallMix()
{
    std::vector<Request> mix;
    auto add = [&](const char *bench, const char *api,
                   const char *device) {
        Request r;
        r.bench = bench;
        r.api = api;
        r.device = device;
        r.id = "m" + std::to_string(mix.size());
        mix.push_back(r);
    };
    add("bfs", "vulkan", "gtx1050ti");
    add("pathfinder", "opencl", "gtx1050ti");
    add("hotspot", "cuda", "gtx1050ti");
    add("nw", "vulkan", "rx560");
    add("bfs", "opencl", "gtx1050ti");
    add("pathfinder", "vulkan", "gtx1050ti");
    add("nw", "opencl", "rx560");
    add("hotspot", "vulkan", "gtx1050ti");
    return mix;
}

TEST(ServeBrokerTest, ConcurrentClientsMatchSerialBaseline)
{
    std::vector<Request> mix = smallMix();

    // Serial golden baseline on this thread.
    std::vector<Response> serial;
    for (const Request &r : mix)
        serial.push_back(executeRequest(r));

    // Four concurrent closed-loop clients against a 3-session broker.
    ServeBroker broker(BrokerConfig{3, {}});
    std::vector<Response> served(mix.size());
    std::atomic<size_t> cursor{0};
    auto client = [&] {
        for (;;) {
            size_t i = cursor.fetch_add(1);
            if (i >= mix.size())
                return;
            served[i] = broker.submitSync(mix[i]);
        }
    };
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c)
        clients.emplace_back(client);
    for (auto &t : clients)
        t.join();

    for (size_t i = 0; i < mix.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << mix[i].id << ": "
                                  << serial[i].error;
        ASSERT_TRUE(served[i].ok) << mix[i].id << ": "
                                  << served[i].error;
        EXPECT_TRUE(served[i].validated) << mix[i].id;
        EXPECT_EQ(served[i].resultHash, serial[i].resultHash)
            << mix[i].id;
        EXPECT_EQ(served[i].kernelRegionNs, serial[i].kernelRegionNs)
            << mix[i].id;
        EXPECT_EQ(served[i].launches, serial[i].launches) << mix[i].id;
    }
    EXPECT_EQ(broker.metrics().completed.load(), mix.size());
    EXPECT_EQ(broker.metrics().errors.load(), 0u);
    EXPECT_EQ(broker.metrics().latency.snapshot().count, mix.size());
}

TEST(ServeSessionTest, RegistriesAreIsolatedPerSession)
{
    // Two sessions with disjoint single-device registries built from
    // renamed copies of the paper parts.
    sim::DeviceSpec alpha = sim::gtx1050ti();
    alpha.name = "alpha-only";
    sim::DeviceSpec beta = sim::rx560();
    beta.name = "beta-only";

    ServeSession sa(0, {alpha});
    ServeSession sb(1, {beta});

    auto runOn = [](ServeSession &s, const char *device) {
        Request r;
        r.bench = "bfs";
        r.api = "vulkan";
        r.device = device;
        std::promise<Response> prom;
        auto fut = prom.get_future();
        s.enqueue(r, [&prom](const Response &resp) {
            prom.set_value(resp);
        });
        return fut.get();
    };

    // Each session resolves its own device...
    Response ra = runOn(sa, "alpha");
    ASSERT_TRUE(ra.ok) << ra.error;
    EXPECT_EQ(ra.device, "alpha-only");
    Response rb = runOn(sb, "beta");
    ASSERT_TRUE(rb.ok) << rb.error;
    EXPECT_EQ(rb.device, "beta-only");

    // ...and can never see the sibling's.  A name that matches the
    // compiled-in registry is invisible too: the override replaces
    // the registry, not augments it.
    EXPECT_FALSE(runOn(sa, "beta").ok);
    EXPECT_FALSE(runOn(sb, "alpha").ok);
    EXPECT_FALSE(runOn(sa, "rx560").ok);

    // The test's own thread keeps the compiled-in registry: session
    // overrides are thread-scoped, not process-global.
    EXPECT_EQ(sim::activeDeviceRegistry().size(),
              sim::deviceRegistry().size());

    // Same request, same simulated result on both sessions' distinct
    // hardware?  No: the specs differ, so results may differ — but
    // the SAME spec under a different session name must reproduce
    // the compiled-in device's result exactly.
    Request ref;
    ref.bench = "bfs";
    ref.api = "vulkan";
    ref.device = "gtx1050ti";
    Response direct = executeRequest(ref);
    ASSERT_TRUE(direct.ok) << direct.error;
    EXPECT_EQ(ra.resultHash, direct.resultHash);
    EXPECT_EQ(ra.kernelRegionNs, direct.kernelRegionNs);
}

TEST(ServeSessionTest, DrainWaitsForEveryQueuedRequest)
{
    std::atomic<size_t> done{0};
    {
        ServeSession s(0, {});
        Request r;
        r.bench = "bfs";
        r.api = "cuda";
        for (int i = 0; i < 5; ++i)
            s.enqueue(r, [&done](const Response &resp) {
                EXPECT_TRUE(resp.ok) << resp.error;
                ++done;
            });
        s.drain();
        EXPECT_EQ(done.load(), 5u);
        EXPECT_EQ(s.pending(), 0u);

        // Graceful shutdown: requests queued after the drain are
        // still answered before the destructor returns.
        for (int i = 0; i < 3; ++i)
            s.enqueue(r, [&done](const Response &) { ++done; });
    }
    EXPECT_EQ(done.load(), 8u);
}

TEST(ServeBrokerTest, StatsLineIsFlatParseable)
{
    ServeBroker broker(BrokerConfig{2, {}});
    Request r;
    r.bench = "bfs";
    r.api = "cuda";
    Response resp = broker.submitSync(r);
    ASSERT_TRUE(resp.ok) << resp.error;

    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseFlatObject(broker.statsLine("s"), &obj, &err))
        << err;
    auto num = [&](const char *key) -> double {
        for (const auto &kv : obj)
            if (kv.first == key)
                return kv.second.num;
        ADD_FAILURE() << "missing " << key;
        return -1;
    };
    EXPECT_EQ(num("sessions"), 2);
    EXPECT_EQ(num("accepted"), 1);
    EXPECT_EQ(num("completed"), 1);
    EXPECT_EQ(num("latency_count"), 1);
    EXPECT_GT(num("latency_p50_ns"), 0);
}

} // namespace
} // namespace vcb::serve

/** @file Unified-memory paging model battery (ISSUE 10 gate).
 *
 *  Four groups, all hand-verifiable because the model is deliberately
 *  simple (src/sim/uvm.h):
 *   1. paging-cost accounting — the per-front-end migrated-bytes /
 *      fault-ns counters and the OpenCL event windows must equal the
 *      hand-computed pages x (migration + fault latency) charges;
 *   2. cfd on the UVM mobile parts — bit-identical host arrays to the
 *      desktop reference across all three APIs and every forced
 *      executor tier, with a nonzero paging cost (the benchmark the
 *      paper skipped wholesale on hard-cap mobiles);
 *   3. the oversubscribed-bandwidth sweep renders byte-identically at
 *      any --jobs count;
 *   4. UVM and hard-cap specs never alias in the compile-cache device
 *      fingerprint.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "cuda/cuda_rt.h"
#include "harness/report_book.h"
#include "harness/sweep.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "sim/device.h"
#include "sim/device_file.h"
#include "sim/dispatch.h"
#include "sim/microop.h"
#include "sim/uvm.h"
#include "suite/benchmark.h"
#include "suite/vkhelp.h"
#include "suite/workload.h"

namespace vcb {
namespace {

/** Restore the executor knobs (same guard as test_tiers.cc). */
struct KnobGuard
{
    ~KnobGuard()
    {
        sim::setExecutorOverride(sim::ExecTier::Count);
        sim::setBlockWidth(0);
        sim::setSuperopsEnabled(-1);
    }
};

constexpr uint64_t kKiB = 1024;

/** Synthetic UVM part with round numbers, so every expected charge in
 *  this file is hand-computable: 256 KiB heap, 8x oversubscription,
 *  64 KiB pages, 1000 ns migration + 5000 ns fault = 6000 ns/page.
 *  Based on the gtx1050ti profile set so all three APIs are available.
 */
sim::DeviceSpec
uvmTestPart()
{
    sim::DeviceSpec d = sim::gtx1050ti();
    d.name = "UVM Test Part";
    d.mobile = true;
    d.unifiedMemory = true;
    d.deviceHeapBytes = 256 * kKiB;
    d.uvmOversubscription = 8.0;
    d.uvmPageBytes = 64 * kKiB;
    d.uvmMigrationNsPerPage = 1000;
    d.uvmFaultLatencyNs = 5000;
    d.uvmOversubBwDerate = 0.5;
    return d;
}

/** The same part with oversubscription 1: a hard-cap unified device
 *  (uvmPagingEnabled() false) for the failure-surface checks. */
sim::DeviceSpec
hardCapTestPart()
{
    sim::DeviceSpec d = uvmTestPart();
    d.name = "Hard Cap Test Part";
    d.uvmOversubscription = 1.0;
    return d;
}

/** The committed UVM expansion parts (adreno640, mali_g76) from the
 *  devices/ directory ctest points VCB_DEVICES_DIR at. */
std::vector<sim::DeviceSpec>
committedUvmParts()
{
    const char *dir = std::getenv("VCB_DEVICES_DIR");
    if (!dir)
        return {};
    std::vector<sim::DeviceSpec> parts;
    for (sim::DeviceSpec &d : sim::loadDeviceDir(dir))
        if (d.uvmPagingEnabled())
            parts.push_back(std::move(d));
    return parts;
}

// ---------------------------------------------------------------------------
// 1. paging-cost accounting
// ---------------------------------------------------------------------------

TEST(UvmAccounting, PlacementCapAndDerateFollowTheModel)
{
    sim::DeviceSpec dev = uvmTestPart();
    EXPECT_TRUE(dev.uvmPagingEnabled());
    EXPECT_EQ(dev.uvmCapBytes(), 8 * 256 * kKiB);

    sim::UvmAccounting uvm(dev);
    using P = sim::UvmAccounting::Placement;
    EXPECT_EQ(uvm.alloc(128 * kKiB), P::DeviceLocal);
    EXPECT_EQ(uvm.heapUsed(), 128 * kKiB);
    EXPECT_FALSE(uvm.oversubscribed());
    EXPECT_EQ(uvm.bwDerate(), 1.0);

    // Tips past the heap: paged, oversubscribed, derated.
    EXPECT_EQ(uvm.alloc(256 * kKiB), P::Paged);
    EXPECT_EQ(uvm.heapUsed(), 384 * kKiB);
    EXPECT_TRUE(uvm.oversubscribed());
    EXPECT_EQ(uvm.bwDerate(), 0.5);

    // Past the cap: fails and usage is unchanged.
    EXPECT_EQ(uvm.alloc(dev.uvmCapBytes()), P::TooBig);
    EXPECT_EQ(uvm.heapUsed(), 384 * kKiB);

    // Freeing drops back under the heap: derate ends.
    uvm.free(256 * kKiB);
    EXPECT_EQ(uvm.heapUsed(), 128 * kKiB);
    EXPECT_FALSE(uvm.oversubscribed());
    EXPECT_EQ(uvm.bwDerate(), 1.0);

    // Hand-computed migration charges: ceiling pages x 6000 ns.
    EXPECT_EQ(sim::uvmPagesFor(dev, 1), 1u);
    EXPECT_EQ(sim::uvmPagesFor(dev, 64 * kKiB), 1u);
    EXPECT_EQ(sim::uvmPagesFor(dev, 64 * kKiB + 1), 2u);
    EXPECT_EQ(sim::uvmPagesFor(dev, 512 * kKiB), 8u);
    EXPECT_DOUBLE_EQ(sim::uvmMigrateNs(dev, 512 * kKiB), 48000.0);
}

TEST(UvmPagingCost, OpenClFirstTouchEvictionAndEventWindows)
{
    sim::DeviceSpec dev = uvmTestPart();
    const uint64_t bytes = 512 * kKiB; // 8 pages, 48000 ns to migrate
    const double migrate_ns = sim::uvmMigrateNs(dev, bytes);

    ocl::Context ctx(dev);
    auto prog =
        ocl::createProgramWithSource(ctx, kernels::buildStridedRead());
    std::string err;
    ASSERT_TRUE(ocl::buildProgram(prog, &err)) << err;
    auto k = ocl::createKernel(prog, "stridedRead", &err);
    ASSERT_TRUE(k.valid()) << err;

    // Guard first so it stays device-local; the big source buffer then
    // tips past the heap and is the only paged allocation.
    auto b_guard = ocl::createBuffer(ctx, ocl::MemReadWrite, 4);
    auto b_src = ocl::createBuffer(ctx, ocl::MemReadOnly, bytes);
    ASSERT_TRUE(b_guard.valid() && b_src.valid());
    EXPECT_EQ(ocl::heapUsed(ctx), bytes + 4);

    std::vector<uint32_t> init(bytes / 4, 1u);
    ocl::enqueueWriteBuffer(ctx, b_src, true, 0, bytes, init.data());
    EXPECT_EQ(ocl::uvmMigratedBytes(ctx), 0u); // host writes are free

    ocl::setKernelArgBuffer(k, 0, b_src);
    ocl::setKernelArgBuffer(k, 1, b_guard);
    ocl::setKernelArgScalar(k, 0, 1u);   // stride
    ocl::setKernelArgScalar(k, 1, 4u);   // rounds
    ocl::setKernelArgScalar(k, 2, 256u); // threads

    // First touch: the launch pages the source in, charged as device
    // time ahead of the kernel inside the event window.
    ocl::Event first = ocl::enqueueNDRangeKernel(ctx, k, 256);
    ctx.finish();
    EXPECT_EQ(ocl::uvmMigratedBytes(ctx), bytes);
    EXPECT_DOUBLE_EQ(ocl::uvmFaultNs(ctx), migrate_ns);

    // Resident now: a second identical launch charges nothing more,
    // and its event window is exactly migrate_ns shorter.
    ocl::Event second = ocl::enqueueNDRangeKernel(ctx, k, 256);
    ctx.finish();
    EXPECT_EQ(ocl::uvmMigratedBytes(ctx), bytes);
    EXPECT_DOUBLE_EQ(ocl::uvmFaultNs(ctx), migrate_ns);
    EXPECT_DOUBLE_EQ((first.endNs() - first.startNs()) -
                         (second.endNs() - second.startNs()),
                     migrate_ns);

    // Host access evicts: the next launch migrates all 8 pages again.
    ocl::enqueueWriteBuffer(ctx, b_src, true, 0, bytes, init.data());
    ocl::enqueueNDRangeKernel(ctx, k, 256);
    ctx.finish();
    EXPECT_EQ(ocl::uvmMigratedBytes(ctx), 2 * bytes);
    EXPECT_DOUBLE_EQ(ocl::uvmFaultNs(ctx), 2 * migrate_ns);
}

TEST(UvmPagingCost, CudaCountersMatchAndHostCopyEvicts)
{
    sim::DeviceSpec dev = uvmTestPart();
    const uint64_t bytes = 512 * kKiB;
    const double migrate_ns = sim::uvmMigrateNs(dev, bytes);

    cuda::Runtime rt(dev);
    auto f = rt.loadFunction(kernels::buildStridedRead());
    auto d_guard = rt.malloc(4);
    auto d_src = rt.malloc(bytes);
    ASSERT_TRUE(d_guard.valid() && d_src.valid());
    EXPECT_EQ(cuda::heapUsed(rt), bytes + 4);

    std::vector<uint32_t> init(bytes / 4, 1u);
    rt.memcpyHtoD(d_src, init.data(), bytes);
    EXPECT_EQ(cuda::uvmMigratedBytes(rt), 0u);

    rt.launchKernel(f, 1, 1, 1, {d_src, d_guard}, {1u, 4u, 256u});
    rt.streamSynchronize();
    EXPECT_EQ(cuda::uvmMigratedBytes(rt), bytes);
    EXPECT_DOUBLE_EQ(cuda::uvmFaultNs(rt), migrate_ns);

    // Resident: no further charge.
    rt.launchKernel(f, 1, 1, 1, {d_src, d_guard}, {1u, 4u, 256u});
    rt.streamSynchronize();
    EXPECT_EQ(cuda::uvmMigratedBytes(rt), bytes);

    // A device->host copy is a host access too: evicts, re-migrates.
    rt.memcpyDtoH(init.data(), d_src, bytes);
    rt.launchKernel(f, 1, 1, 1, {d_src, d_guard}, {1u, 4u, 256u});
    rt.streamSynchronize();
    EXPECT_EQ(cuda::uvmMigratedBytes(rt), 2 * bytes);
    EXPECT_DOUBLE_EQ(cuda::uvmFaultNs(rt), 2 * migrate_ns);
}

TEST(UvmPagingCost, VulkanCountersMatchAcrossSubmits)
{
    sim::ScopedDeviceRegistry reg({uvmTestPart()});
    const sim::DeviceSpec &dev = reg.devices()[0];
    const uint64_t bytes = 512 * kKiB;
    const double migrate_ns = sim::uvmMigrateNs(dev, bytes);

    suite::VkContext ctx = suite::VkContext::create(dev);
    suite::VkKernel k;
    std::string err =
        suite::createVkKernel(ctx, kernels::buildStridedRead(), &k);
    ASSERT_EQ(err, "");

    auto b_guard = ctx.createDeviceBuffer(4);
    auto b_src = ctx.createDeviceBuffer(bytes);
    ASSERT_TRUE(b_guard.valid() && b_src.valid());
    std::vector<uint32_t> init(bytes / 4, 1u);
    ASSERT_TRUE(ctx.upload(b_src, init.data(), bytes));
    auto set = suite::makeDescriptorSet(ctx, k,
                                        {{0, b_src}, {1, b_guard}});

    auto submitOnce = [&]() {
        vkm::CommandBuffer cb;
        vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool,
                                              &cb),
                   "allocateCommandBuffer");
        vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
        vkm::cmdBindPipeline(cb, k.pipeline);
        vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
        uint32_t push[3] = {1, 4, 256};
        vkm::cmdPushConstants(cb, k.layout, 0, 12, push);
        vkm::cmdDispatch(cb, 1, 1, 1);
        vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");
        vkm::Fence fence;
        vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
    };

    // The upload mapped the paged source (non-resident); the first
    // dispatch touching it pays exactly the hand-computed migration.
    submitOnce();
    EXPECT_EQ(vkm::uvmMigratedBytes(ctx.device), bytes);
    EXPECT_DOUBLE_EQ(vkm::uvmFaultNs(ctx.device), migrate_ns);

    // Still resident across a second submission: no further charge.
    submitOnce();
    EXPECT_EQ(vkm::uvmMigratedBytes(ctx.device), bytes);
    EXPECT_DOUBLE_EQ(vkm::uvmFaultNs(ctx.device), migrate_ns);
}

/** Satellite: past-the-cap allocation fails identically on all three
 *  front-ends — invalid handle, never a crash — on both the UVM part
 *  (beyond uvmCapBytes) and the hard-cap part (beyond the heap). */
TEST(UvmHardCap, AllocationFailureSurfaceAgreesAcrossFrontEnds)
{
    for (const sim::DeviceSpec &spec :
         {uvmTestPart(), hardCapTestPart()}) {
        sim::ScopedDeviceRegistry reg({spec});
        const sim::DeviceSpec &dev = reg.devices()[0];
        const uint64_t too_big = dev.uvmCapBytes() + dev.uvmPageBytes;

        ocl::Context octx(dev);
        EXPECT_FALSE(
            ocl::createBuffer(octx, ocl::MemReadWrite, too_big).valid())
            << dev.name;

        cuda::Runtime rt(dev);
        EXPECT_FALSE(rt.malloc(too_big).valid()) << dev.name;

        suite::VkContext vctx = suite::VkContext::create(dev);
        EXPECT_FALSE(vctx.createDeviceBuffer(too_big).valid())
            << dev.name;
    }
    // The hard-cap part really is hard-capped: the first byte past the
    // heap already fails (on the UVM part it pages instead).
    sim::DeviceSpec hard = hardCapTestPart();
    EXPECT_EQ(hard.uvmCapBytes(), hard.deviceHeapBytes);
    sim::UvmAccounting uvm(hard);
    EXPECT_EQ(uvm.alloc(hard.deviceHeapBytes + 4),
              sim::UvmAccounting::Placement::TooBig);
}

// ---------------------------------------------------------------------------
// 2. cfd on the UVM mobile parts
// ---------------------------------------------------------------------------

/** cfd — wholesale-skipped on the paper's hard-cap mobiles — must run
 *  on the committed UVM parts under all three APIs, pay a nonzero
 *  paging cost, validate, and produce host arrays bit-identical to a
 *  desktop reference run of the same workload. */
TEST(UvmCfd, MobileRunsBitIdenticalToDesktopAcrossApis)
{
    std::vector<sim::DeviceSpec> parts = committedUvmParts();
    if (parts.empty())
        GTEST_SKIP() << "VCB_DEVICES_DIR not set";
    ASSERT_EQ(parts.size(), 2u); // adreno640 + mali_g76
    // The shipped parts expose no CUDA driver; model one from each
    // part's OpenCL profile so the CUDA front-end hits paging too.
    for (sim::DeviceSpec &d : parts)
        d.apis[static_cast<int>(sim::Api::Cuda)] =
            d.apis[static_cast<int>(sim::Api::OpenCl)];
    parts.push_back(sim::gtx1050ti());
    sim::ScopedDeviceRegistry reg(std::move(parts));
    const sim::DeviceSpec &desktop = reg.devices().back();

    const suite::Benchmark &cfd = suite::byName("cfd");
    for (const suite::SizeConfig &cfg : cfd.mobileSizes()) {
        suite::Workload w = cfd.workload(cfg);
        suite::HostArrays ref;
        suite::RunResult rr =
            suite::runWorkload(w, desktop, sim::Api::Vulkan, {}, &ref);
        ASSERT_TRUE(rr.ok) << rr.skipReason;
        EXPECT_TRUE(rr.validated) << rr.validationError;
        EXPECT_EQ(rr.migratedBytes, 0u); // desktop never pages

        for (size_t di = 0; di + 1 < reg.devices().size(); ++di) {
            const sim::DeviceSpec &dev = reg.devices()[di];
            ASSERT_EQ(cfd.mobileSkipReason(dev), "") << dev.name;
            for (sim::Api api : {sim::Api::Vulkan, sim::Api::OpenCl,
                                 sim::Api::Cuda}) {
                suite::HostArrays got;
                suite::RunResult r =
                    suite::runWorkload(w, dev, api, {}, &got);
                std::string what = dev.name + "/" +
                                   std::string(sim::apiName(api)) +
                                   "/" + cfg.label;
                ASSERT_TRUE(r.ok) << what << ": " << r.skipReason;
                EXPECT_TRUE(r.validated)
                    << what << ": " << r.validationError;
                EXPECT_GT(r.migratedBytes, 0u) << what;
                EXPECT_GT(r.faultNs, 0.0) << what;
                EXPECT_EQ(got, ref) << what;
            }
        }
    }
}

/** Executor tiers are host-speed knobs: forcing each tier on a paging
 *  run must leave outputs, simulated time and the paging charges
 *  bit-identical to the auto-tier reference. */
TEST(UvmCfd, ExecutorTiersPreserveIdentityUnderPaging)
{
    std::vector<sim::DeviceSpec> parts = committedUvmParts();
    if (parts.empty())
        GTEST_SKIP() << "VCB_DEVICES_DIR not set";
    sim::ScopedDeviceRegistry reg({parts[0]});
    const sim::DeviceSpec &dev = reg.devices()[0];

    const suite::Benchmark &cfd = suite::byName("cfd");
    suite::Workload w = cfd.workload(cfd.mobileSizes()[0]);
    KnobGuard guard;

    sim::setExecutorOverride(sim::ExecTier::Count); // auto
    suite::HostArrays ref;
    suite::RunResult rr =
        suite::runWorkload(w, dev, sim::Api::Vulkan, {}, &ref);
    ASSERT_TRUE(rr.ok) << rr.skipReason;
    ASSERT_GT(rr.migratedBytes, 0u);

    for (sim::ExecTier tier :
         {sim::ExecTier::Trace, sim::ExecTier::Block,
          sim::ExecTier::LaneMajor, sim::ExecTier::Instrumented}) {
        sim::setExecutorOverride(tier);
        suite::HostArrays got;
        suite::RunResult r =
            suite::runWorkload(w, dev, sim::Api::Vulkan, {}, &got);
        std::string what =
            "tier " + std::to_string(static_cast<int>(tier));
        ASSERT_TRUE(r.ok) << what << ": " << r.skipReason;
        EXPECT_EQ(got, ref) << what;
        EXPECT_EQ(r.kernelRegionNs, rr.kernelRegionNs) << what;
        EXPECT_EQ(r.migratedBytes, rr.migratedBytes) << what;
        EXPECT_EQ(r.faultNs, rr.faultNs) << what;
        EXPECT_TRUE(r.validated) << what << ": " << r.validationError;
    }
}

// ---------------------------------------------------------------------------
// 3. oversub sweep parallel byte-identity
// ---------------------------------------------------------------------------

/** Render the oversub section through the sweep executor at a given
 *  job count — the exact plan/run/render split buildReportBook uses. */
std::string
renderOversubAt(const std::vector<sim::DeviceSpec> &parts,
                unsigned jobs)
{
    std::vector<harness::OversubPanel> panels(parts.size());
    std::vector<suite::OversubConfig> cfgs(parts.size());
    std::vector<std::pair<size_t, int>> cells;
    for (size_t di = 0; di < parts.size(); ++di) {
        panels[di] = harness::planOversubPanel(parts[di], true,
                                               cfgs[di]);
        for (int a = 0; a < sim::apiCount; ++a)
            if (panels[di].apiRun[a])
                cells.emplace_back(di, a);
    }
    harness::SweepOptions opts;
    opts.jobs = jobs;
    opts.devices = parts;
    harness::runSweepPlan(
        cells.size(),
        [&](size_t ci) {
            size_t di = cells[ci].first;
            int a = cells[ci].second;
            harness::runOversubPanelApi(panels[di],
                                        static_cast<sim::Api>(a),
                                        sim::activeDeviceRegistry()[di],
                                        cfgs[di]);
        },
        opts);
    return harness::renderOversubSection(panels, true);
}

TEST(UvmOversub, SweepRendersByteIdenticalAtAnyJobCount)
{
    std::vector<sim::DeviceSpec> parts = committedUvmParts();
    if (parts.empty())
        GTEST_SKIP() << "VCB_DEVICES_DIR not set";
    std::string serial = renderOversubAt(parts, 1);
    std::string parallel = renderOversubAt(parts, 4);
    ASSERT_NE(serial.find("migrated"), std::string::npos);
    ASSERT_NE(serial.find("2.00"), std::string::npos);
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// 4. compile-cache fingerprint non-aliasing
// ---------------------------------------------------------------------------

TEST(UvmFingerprint, UvmAndHardCapSpecsNeverAlias)
{
    sim::DeviceSpec uvm = uvmTestPart();
    sim::DeviceSpec hard = hardCapTestPart();
    hard.name = uvm.name; // only the UVM fields differ
    EXPECT_NE(sim::hashDevice(uvm), sim::hashDevice(hard));
    EXPECT_NE(sim::serializeDevice(uvm), sim::serializeDevice(hard));

    // Every UVM field individually moves the fingerprint on a unified
    // part (the compile cache keys device behaviour on it).
    const uint64_t base = sim::hashDevice(uvm);
    sim::DeviceSpec t = uvm;
    t.uvmOversubscription = 16.0;
    EXPECT_NE(sim::hashDevice(t), base);
    t = uvm;
    t.uvmPageBytes = 4096;
    EXPECT_NE(sim::hashDevice(t), base);
    t = uvm;
    t.uvmMigrationNsPerPage = 1001;
    EXPECT_NE(sim::hashDevice(t), base);
    t = uvm;
    t.uvmFaultLatencyNs = 5001;
    EXPECT_NE(sim::hashDevice(t), base);
    t = uvm;
    t.uvmOversubBwDerate = 0.25;
    EXPECT_NE(sim::hashDevice(t), base);

    // On a non-unified part the UVM fields are inert and deliberately
    // excluded: two such specs fingerprint identically.
    sim::DeviceSpec desk1 = sim::gtx1050ti();
    sim::DeviceSpec desk2 = desk1;
    desk2.uvmPageBytes = 4096;
    ASSERT_FALSE(desk1.unifiedMemory);
    EXPECT_EQ(sim::hashDevice(desk1), sim::hashDevice(desk2));
    EXPECT_EQ(sim::serializeDevice(desk1), sim::serializeDevice(desk2));
}

} // namespace
} // namespace vcb

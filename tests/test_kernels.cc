/** @file The kernel library: every module validates, matches its
 *  documented interface, disassembles, and survives a binary round
 *  trip (the "offline compilation" path). */

#include <gtest/gtest.h>

#include <functional>

#include "kernels/kernels.h"
#include "spirv/module.h"

namespace vcb::kernels {
namespace {

struct KernelCase
{
    const char *name;
    std::function<spirv::Module()> build;
    uint32_t bindings;
    uint32_t pushWords;
    bool usesShared;
    bool hasPromoteHint;
};

const KernelCase kernelCases[] = {
    {"vectorAdd", buildVecAdd, 3, 1, false, false},
    {"stridedRead", buildStridedRead, 2, 3, false, false},
    {"backprop_layerforward", buildBackpropLayerForward, 3, 1, true,
     false},
    {"backprop_adjust_weights", buildBackpropAdjustWeights, 3, 2, false,
     false},
    {"bfs_kernel1", buildBfsKernel1, 7, 1, false, true},
    {"bfs_kernel2", buildBfsKernel2, 4, 1, false, false},
    {"cfd_compute_step_factor", buildCfdStepFactor, 3, 1, false, false},
    {"cfd_compute_flux", buildCfdComputeFlux, 4, 1, false, false},
    {"cfd_time_step", buildCfdTimeStep, 3, 2, false, false},
    {"gaussian_fan1", buildGaussianFan1, 2, 2, false, false},
    {"gaussian_fan2", buildGaussianFan2, 3, 2, false, false},
    {"hotspot_step", buildHotspotStep, 3, 6, true, false},
    {"lud_diagonal", buildLudDiagonal, 1, 2, true, false},
    {"lud_perimeter", buildLudPerimeter, 1, 3, true, false},
    {"lud_internal", buildLudInternal, 1, 2, true, false},
    {"nn_euclid", buildNnEuclid, 3, 3, false, false},
    {"nw_block", buildNwBlock, 2, 4, true, false},
    {"pathfinder_row", buildPathfinderRow, 3, 2, false, false},
    {"srad_reduce", buildSradReduce, 3, 1, true, false},
    {"srad_step1", buildSradStep1, 6, 2, false, false},
    {"srad_step2", buildSradStep2, 6, 2, false, false},
    {"kmeans_swap", buildKmeansSwap, 2, 2, false, false},
    {"kmeans_assign", buildKmeansAssign, 4, 3, false, false},
    {"streamcluster_gain", buildStreamclusterGain, 5, 3, false, false},
};

class KernelLibrary : public ::testing::TestWithParam<KernelCase>
{
};

TEST_P(KernelLibrary, ValidatesAndMatchesInterface)
{
    const KernelCase &c = GetParam();
    spirv::Module m = c.build();
    EXPECT_EQ(m.name, c.name);
    std::string err;
    EXPECT_TRUE(spirv::validate(m, &err)) << err;
    EXPECT_EQ(m.bindings.size(), c.bindings);
    EXPECT_EQ(m.pushWords, c.pushWords);
    EXPECT_EQ(m.sharedWords > 0, c.usesShared);

    bool any_hint = false;
    for (const auto &insn : m.decode()) {
        if (insn.op == spirv::Op::LdBuf &&
            (insn.d & spirv::MemFlagPromoteHint))
            any_hint = true;
    }
    EXPECT_EQ(any_hint, c.hasPromoteHint);
}

TEST_P(KernelLibrary, BinaryRoundTripIsExact)
{
    const KernelCase &c = GetParam();
    spirv::Module m = c.build();
    spirv::Module back = spirv::Module::deserialize(m.serialize());
    EXPECT_EQ(back.code, m.code);
    EXPECT_EQ(back.name, m.name);
    EXPECT_EQ(back.regCount, m.regCount);
}

TEST_P(KernelLibrary, DisassemblesWithItsName)
{
    const KernelCase &c = GetParam();
    std::string text = spirv::disassemble(c.build());
    EXPECT_NE(text.find(c.name), std::string::npos);
    EXPECT_NE(text.find("Ret"), std::string::npos);
}

TEST_P(KernelLibrary, BuildersAreDeterministic)
{
    const KernelCase &c = GetParam();
    EXPECT_EQ(c.build().serialize(), c.build().serialize());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelLibrary, ::testing::ValuesIn(kernelCases),
    [](const ::testing::TestParamInfo<KernelCase> &info) {
        return std::string(info.param.name);
    });

TEST(KernelLibrary, WorkgroupShapesMatchDocs)
{
    EXPECT_EQ(buildVecAdd().localSize[0], 256u);
    EXPECT_EQ(buildHotspotStep().localSize[0], 16u);
    EXPECT_EQ(buildHotspotStep().localSize[1], 16u);
    EXPECT_EQ(buildLudDiagonal().localSize[0], 16u);
    EXPECT_EQ(buildLudInternal().localSize[0], 16u);
    EXPECT_EQ(buildLudInternal().localSize[1], 16u);
    EXPECT_EQ(buildNwBlock().localSize[0], nwBlockSize);
    EXPECT_EQ(buildSradStep1().localSize[0], blockSize);
    EXPECT_EQ(buildSradStep1().localSize[1], blockSize);
    EXPECT_EQ(buildSradReduce().localSize[0], 256u);
    EXPECT_EQ(buildKmeansAssign().localSize[0], 256u);
    EXPECT_EQ(buildStreamclusterGain().localSize[0], 256u);
}

TEST(KernelLibrary, RegistryMatchesTheLibrary)
{
    // The shared registry must list exactly the kernels above, each
    // under its own entry-point name.
    ASSERT_EQ(kernelRegistry().size(), std::size(kernelCases));
    for (size_t i = 0; i < kernelRegistry().size(); ++i) {
        const auto &[name, fn] = kernelRegistry()[i];
        EXPECT_EQ(name, kernelCases[i].name);
        EXPECT_EQ(fn().name, name);
    }
    EXPECT_EQ(buildByName("nw_block").name, "nw_block");
}

TEST(KernelLibrary, OnlyBfsCarriesThePromoteHint)
{
    // The paper's compiler-maturity finding is specific to bfs.
    int hinted = 0;
    for (const auto &c : kernelCases) {
        spirv::Module m = c.build();
        for (const auto &insn : m.decode())
            if ((insn.op == spirv::Op::LdBuf ||
                 insn.op == spirv::Op::StBuf) &&
                (insn.d & spirv::MemFlagPromoteHint)) {
                ++hinted;
                EXPECT_EQ(m.name, "bfs_kernel1");
            }
    }
    EXPECT_GT(hinted, 0);
}

} // namespace
} // namespace vcb::kernels

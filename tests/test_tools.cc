/** @file Smoke tests for the tools/ binaries: vcb_run --list, a tiny
 *  vcb_run benchmark execution, and vcb_disasm on builder-generated
 *  modules.  CTest points VCB_RUN_BIN / VCB_DISASM_BIN at the built
 *  executables; the tests skip when run outside the build harness. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

/** Run a command, capture combined stdout, return exit status. */
int
runCapture(const std::string &cmd, std::string *out)
{
    out->clear();
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe)
        return -1;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        out->append(buf, n);
    return pclose(pipe);
}

std::string
binFromEnv(const char *var)
{
    const char *v = std::getenv(var);
    return v ? v : "";
}

class ToolsSmoke : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        vcbRun = binFromEnv("VCB_RUN_BIN");
        vcbDisasm = binFromEnv("VCB_DISASM_BIN");
        if (vcbRun.empty() || vcbDisasm.empty())
            GTEST_SKIP()
                << "VCB_RUN_BIN / VCB_DISASM_BIN not set (run via ctest)";
    }

    std::string vcbRun, vcbDisasm;
};

TEST_F(ToolsSmoke, RunListShowsBenchmarksAndDevices)
{
    std::string out;
    ASSERT_EQ(runCapture(vcbRun + " --list", &out), 0) << out;
    // The nine Table-I benchmarks plus the suite expansion...
    for (const char *bench :
         {"backprop", "bfs", "cfd", "gaussian", "hotspot", "lud", "nn",
          "nw", "pathfinder", "srad", "kmeans", "streamcluster"})
        EXPECT_NE(out.find(bench), std::string::npos) << out;
    // ...and all four Table-II/III devices.
    for (const char *dev :
         {"GTX1050Ti", "RX560", "Adreno", "PowerVR"})
        EXPECT_NE(out.find(dev), std::string::npos) << out;
}

TEST_F(ToolsSmoke, RunExecutesTinyBenchmarkOnAllApis)
{
    std::string out;
    ASSERT_EQ(runCapture(vcbRun + " --bench nn --device gtx1050ti"
                                  " --api all --params 4096",
                         &out),
              0)
        << out;
    EXPECT_NE(out.find("VALIDATED"), std::string::npos) << out;
    EXPECT_EQ(out.find("INVALID"), std::string::npos) << out;
    for (const char *api : {"Vulkan", "OpenCL", "CUDA"})
        EXPECT_NE(out.find(api), std::string::npos) << out;
}

TEST_F(ToolsSmoke, RunRejectsUnknownFlag)
{
    std::string out;
    EXPECT_NE(runCapture(vcbRun + " --no-such-flag", &out), 0);
    EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

TEST_F(ToolsSmoke, DisasmListsEveryKernel)
{
    std::string out;
    ASSERT_EQ(runCapture(vcbDisasm + " --list", &out), 0) << out;
    for (const char *k :
         {"vectorAdd", "stridedRead", "backprop_layerforward",
          "bfs_kernel1", "cfd_compute_flux", "gaussian_fan1",
          "hotspot_step", "lud_diagonal", "nn_euclid", "nw_block",
          "pathfinder_row", "srad_reduce", "srad_step1", "srad_step2",
          "kmeans_swap", "kmeans_assign", "streamcluster_gain"})
        EXPECT_NE(out.find(k), std::string::npos) << out;
}

TEST_F(ToolsSmoke, DisasmPrintsListingAndDriverCompilation)
{
    std::string out;
    ASSERT_EQ(runCapture(vcbDisasm + " bfs_kernel1", &out), 0) << out;
    EXPECT_NE(out.find("bfs_kernel1"), std::string::npos) << out;
    EXPECT_NE(out.find("Ret"), std::string::npos) << out;
    EXPECT_NE(out.find("binary:"), std::string::npos) << out;
    // The compiler-maturity comparison: Vulkan ignores the promote
    // hint on the GTX 1050 Ti, OpenCL/CUDA honour it.
    EXPECT_NE(out.find("ignored"), std::string::npos) << out;
    EXPECT_NE(out.find("honoured"), std::string::npos) << out;
}

TEST_F(ToolsSmoke, KmeansIterationCountIsThreadCountInvariant)
{
    // kmeans's convergence loop must be a pure function of the data:
    // the reported launch count (1 transpose + 1 assignment dispatch
    // per iteration) has to be identical whether the simulator
    // interprets workgroups serially (VCB_THREADS=1) or across N
    // workers.  The pool is sized once per process, so the property
    // needs separate processes — which is exactly what this harness
    // can provide.
    auto launchesOf = [&](const std::string &env) -> long {
        std::string out;
        int rc = runCapture(env + " " + vcbRun +
                                " --bench kmeans --device gtx1050ti"
                                " --api vulkan --params 2048,4,5",
                            &out);
        EXPECT_EQ(rc, 0) << out;
        EXPECT_NE(out.find("VALIDATED"), std::string::npos) << out;
        size_t pos = out.find("launches");
        EXPECT_NE(pos, std::string::npos) << out;
        if (pos == std::string::npos)
            return -1;
        return std::strtol(out.c_str() + pos + 8, nullptr, 10);
    };
    long serial = launchesOf("VCB_THREADS=1");
    long parallel = launchesOf("VCB_THREADS=4");
    EXPECT_GT(serial, 1);
    EXPECT_EQ(serial, parallel);
}

TEST_F(ToolsSmoke, DisasmOnMobileDeviceShowsProfile)
{
    std::string out;
    ASSERT_EQ(runCapture(vcbDisasm + " hotspot_step --device adreno",
                         &out),
              0)
        << out;
    EXPECT_NE(out.find("Adreno"), std::string::npos) << out;
    // No CUDA on the Snapdragon part.
    EXPECT_NE(out.find("not available"), std::string::npos) << out;
}

} // namespace

/** @file Tier-equivalence: the executor tier, the lane-block width
 *  and superop formation are host-speed knobs ONLY.  Every golden
 *  scenario is replayed under each forced VCB_EXECUTOR tier, each
 *  supported VCB_BLOCK_W, and with VCB_SUPEROPS disabled, demanding
 *  bit-identical checked buffers, DispatchStats and simulated
 *  kernelNs against the auto-tier reference run — including the
 *  divergence-heavy scenarios whose mid-phase branches exercise the
 *  block tier's bail-to-lane-major path at every width. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/dispatch.h"
#include "sim/microop.h"
#include "suite/validate.h"

namespace vcb::suite {
namespace {

/** Restore every executor knob to its env-driven default, so a
 *  failing assertion cannot leak a forced tier into later tests. */
struct KnobGuard
{
    ~KnobGuard()
    {
        sim::setExecutorOverride(sim::ExecTier::Count);
        sim::setBlockWidth(0);
        sim::setSuperopsEnabled(-1);
    }
};

/** Assert `got` is observably indistinguishable from `ref`: same
 *  checked buffers (bit-exact), same per-step DispatchStats, same
 *  simulated kernel time. */
void
expectSameOutcome(const GoldenScenario &s, const GoldenOutcome &ref,
                  const GoldenOutcome &got, const std::string &what)
{
    ASSERT_TRUE(got.ran) << s.name << " under " << what << ": "
                         << got.skipReason;
    EXPECT_EQ(got.error, "") << s.name << " under " << what;
    ASSERT_EQ(got.checkedBuffers.size(), ref.checkedBuffers.size())
        << s.name << " under " << what;
    for (size_t c = 0; c < ref.checkedBuffers.size(); ++c)
        EXPECT_EQ(got.checkedBuffers[c], ref.checkedBuffers[c])
            << s.name << " buffer " << c << " under " << what;
    ASSERT_EQ(got.stepStats.size(), ref.stepStats.size())
        << s.name << " under " << what;
    for (size_t st = 0; st < ref.stepStats.size(); ++st)
        EXPECT_TRUE(got.stepStats[st] == ref.stepStats[st])
            << s.name << " step " << st << " stats diverge under "
            << what << " (laneCycles " << got.stepStats[st].laneCycles
            << " vs " << ref.stepStats[st].laneCycles
            << ", sharedAccesses "
            << got.stepStats[st].sharedAccesses << " vs "
            << ref.stepStats[st].sharedAccesses << ", dramAccesses "
            << got.stepStats[st].dramAccesses << " vs "
            << ref.stepStats[st].dramAccesses << ")";
    EXPECT_EQ(got.kernelNs, ref.kernelNs)
        << s.name << " simulated time diverges under " << what;
}

class TierEquivalence
    : public ::testing::TestWithParam<const GoldenScenario *>
{
};

/** Each of the four tiers, forced, must replay every scenario with
 *  results bit-identical to the policy-chosen tier. */
TEST_P(TierEquivalence, ForcedTiersMatchAuto)
{
    const GoldenScenario &s = *GetParam();
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    KnobGuard guard;

    sim::setExecutorOverride(sim::ExecTier::Count);
    GoldenOutcome ref = runGoldenScenario(s, dev, sim::Api::Vulkan);
    ASSERT_TRUE(ref.ran) << ref.skipReason;

    for (sim::ExecTier tier :
         {sim::ExecTier::Trace, sim::ExecTier::Block,
          sim::ExecTier::LaneMajor, sim::ExecTier::Instrumented}) {
        sim::setExecutorOverride(tier);
        GoldenOutcome out = runGoldenScenario(s, dev, sim::Api::Vulkan);
        sim::setExecutorOverride(sim::ExecTier::Count);
        expectSameOutcome(s, ref, out,
                          std::string("forced tier ") +
                              sim::execTierName(tier));
    }
}

/** W is a host-vectorization knob: every supported lane-block width
 *  must produce identical results, including scenarios that diverge
 *  mid-block and bail partial blocks to the lane-major executor. */
TEST_P(TierEquivalence, BlockWidthNeverChangesResults)
{
    const GoldenScenario &s = *GetParam();
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    KnobGuard guard;

    sim::setBlockWidth(0);
    GoldenOutcome ref = runGoldenScenario(s, dev, sim::Api::Vulkan);
    ASSERT_TRUE(ref.ran) << ref.skipReason;

    for (uint32_t w : {4u, 8u, 16u}) {
        sim::setBlockWidth(w);
        GoldenOutcome out = runGoldenScenario(s, dev, sim::Api::Vulkan);
        sim::setBlockWidth(0);
        expectSameOutcome(s, ref, out,
                          "block width " + std::to_string(w));
    }
}

/** Superop formation (and with it SuperLoop fusion) must be
 *  observably invisible: compiling with VCB_SUPEROPS=0 must replay
 *  every scenario bit-identically, on every tier. */
TEST_P(TierEquivalence, SuperopsAreBitInvisible)
{
    const GoldenScenario &s = *GetParam();
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    KnobGuard guard;

    sim::setSuperopsEnabled(1);
    GoldenOutcome ref = runGoldenScenario(s, dev, sim::Api::Vulkan);
    ASSERT_TRUE(ref.ran) << ref.skipReason;

    sim::setSuperopsEnabled(0);
    GoldenOutcome plain = runGoldenScenario(s, dev, sim::Api::Vulkan);
    expectSameOutcome(s, ref, plain, "superops disabled");

    // Superops with the lane-major executor forced: the scalar
    // per-lane Super/SuperLoop handlers must agree with the plain
    // stream too (the vector handlers are covered above).
    sim::setSuperopsEnabled(1);
    sim::setExecutorOverride(sim::ExecTier::LaneMajor);
    GoldenOutcome lane = runGoldenScenario(s, dev, sim::Api::Vulkan);
    expectSameOutcome(s, ref, lane, "superops + forced lane-major");
}

std::vector<const GoldenScenario *>
scenarioPtrs()
{
    std::vector<const GoldenScenario *> ptrs;
    for (const auto &s : goldenScenarios())
        ptrs.push_back(&s);
    return ptrs;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, TierEquivalence, ::testing::ValuesIn(scenarioPtrs()),
    [](const ::testing::TestParamInfo<const GoldenScenario *> &info) {
        return info.param->name;
    });

/** The tier policy itself: metadata-driven, with the documented
 *  degradations. */
TEST(TierPolicy, SelectionFollowsLoweringMetadata)
{
    KnobGuard guard;
    sim::MicroKernel straight;
    straight.hasBranches = false;
    straight.hasAtomics = false;
    EXPECT_EQ(sim::chooseExecTier(straight), sim::ExecTier::Trace);

    sim::MicroKernel branchy = straight;
    branchy.hasBranches = true;
    EXPECT_EQ(sim::chooseExecTier(branchy), sim::ExecTier::Block);

    sim::MicroKernel atomics = straight;
    atomics.hasAtomics = true;
    EXPECT_EQ(sim::chooseExecTier(atomics), sim::ExecTier::Block);

    // A forced trace tier degrades to block when the body is not
    // straight-line (the trace executor compiles the branch machinery
    // out entirely, so it must never see one).
    sim::setExecutorOverride(sim::ExecTier::Trace);
    EXPECT_EQ(sim::effectiveExecTier(branchy), sim::ExecTier::Block);
    EXPECT_EQ(sim::effectiveExecTier(straight), sim::ExecTier::Trace);
    sim::setExecutorOverride(sim::ExecTier::Count);
}

} // namespace
} // namespace vcb::suite

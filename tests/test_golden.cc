/** @file Golden-reference validation: every kernel in src/kernels/
 *  runs on deterministic seeded inputs through each simulated API's
 *  driver-compile + execution path, and the outputs must match a
 *  from-scratch CPU reference and agree across APIs (the paper's
 *  Section-IV correctness methodology as executable tests). */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kernels/kernels.h"
#include "spirv/module.h"
#include "suite/validate.h"

namespace vcb::suite {
namespace {

const sim::Api allApis[] = {sim::Api::Vulkan, sim::Api::OpenCl,
                            sim::Api::Cuda};

class GoldenReference
    : public ::testing::TestWithParam<const GoldenScenario *>
{
};

/** Desktop drivers reject nothing: every scenario must execute and
 *  validate under every API the device exposes. */
TEST_P(GoldenReference, ValidatesOnDesktopDevices)
{
    const GoldenScenario &s = *GetParam();
    for (const sim::DeviceSpec *dev :
         {&sim::gtx1050ti(), &sim::rx560()}) {
        for (sim::Api api : allApis) {
            if (!dev->profile(api).available)
                continue;
            GoldenOutcome out = runGoldenScenario(s, *dev, api);
            ASSERT_TRUE(out.ran)
                << s.name << " on " << dev->name << "/"
                << sim::apiName(api) << ": " << out.skipReason;
            EXPECT_EQ(out.error, "")
                << s.name << " on " << dev->name << "/"
                << sim::apiName(api);
        }
    }
}

/** The three programming models must produce matching results for the
 *  same seeded workload (cross-API comparability, paper Sec. IV). */
TEST_P(GoldenReference, ApisAgreeOnGtx1050Ti)
{
    const GoldenScenario &s = *GetParam();
    const sim::DeviceSpec &dev = sim::gtx1050ti();

    GoldenOutcome baseline =
        runGoldenScenario(s, dev, sim::Api::OpenCl);
    ASSERT_TRUE(baseline.ran) << baseline.skipReason;

    for (sim::Api api : {sim::Api::Vulkan, sim::Api::Cuda}) {
        GoldenOutcome out = runGoldenScenario(s, dev, api);
        ASSERT_TRUE(out.ran) << out.skipReason;
        ASSERT_EQ(out.checkedBuffers.size(),
                  baseline.checkedBuffers.size());
        for (size_t c = 0; c < s.checks.size(); ++c) {
            const GoldenCheck &chk = s.checks[c];
            std::string err;
            if (chk.elem == spirv::ElemType::F32) {
                std::vector<float> got(out.checkedBuffers[c].size()),
                    base(baseline.checkedBuffers[c].size());
                for (size_t i = 0; i < got.size(); ++i)
                    got[i] = std::bit_cast<float>(
                        out.checkedBuffers[c][i]);
                for (size_t i = 0; i < base.size(); ++i)
                    base[i] = std::bit_cast<float>(
                        baseline.checkedBuffers[c][i]);
                err = compareFloats(got, base, chk.relTol, chk.absTol);
            } else {
                err = out.checkedBuffers[c] == baseline.checkedBuffers[c]
                          ? ""
                          : "integer buffers differ";
            }
            EXPECT_EQ(err, "")
                << s.name << " check " << c << ": "
                << sim::apiName(api) << " vs OpenCL";
        }
    }
}

/** Mobile drivers may legitimately refuse kernels (the paper's driver
 *  failures); anything that runs must still validate, and any skip
 *  must be attributable to the device's declared driver profile. */
TEST_P(GoldenReference, MobileSkipsMatchDriverProfiles)
{
    const GoldenScenario &s = *GetParam();
    for (const sim::DeviceSpec *dev :
         {&sim::adreno506(), &sim::powervrG6430()}) {
        for (sim::Api api : allApis) {
            if (!dev->profile(api).available)
                continue;
            GoldenOutcome out = runGoldenScenario(s, *dev, api);
            if (out.ran) {
                EXPECT_EQ(out.error, "")
                    << s.name << " on " << dev->name << "/"
                    << sim::apiName(api);
                continue;
            }
            bool declared = false;
            for (const auto &m : s.modules)
                declared |= dev->profile(api).kernelBroken(m.name);
            EXPECT_TRUE(declared)
                << s.name << " skipped on " << dev->name << "/"
                << sim::apiName(api)
                << " without a profile-declared reason: "
                << out.skipReason;
        }
    }
}

std::vector<const GoldenScenario *>
scenarioPtrs()
{
    std::vector<const GoldenScenario *> ptrs;
    for (const auto &s : goldenScenarios())
        ptrs.push_back(&s);
    return ptrs;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, GoldenReference, ::testing::ValuesIn(scenarioPtrs()),
    [](const ::testing::TestParamInfo<const GoldenScenario *> &info) {
        return info.param->name;
    });

TEST(GoldenCoverage, EveryKernelHasAScenario)
{
    // A kernel added to the registry without a golden scenario fails
    // here — coverage cannot silently regress.  The size guard keeps
    // the registry from silently shrinking; bump it when adding a
    // kernel family.
    std::set<std::string> expected;
    for (const auto &[name, fn] : kernels::kernelRegistry())
        expected.insert(name);
    EXPECT_EQ(expected.size(), 24u);

    std::set<std::string> covered;
    for (const auto &s : goldenScenarios()) {
        EXPECT_FALSE(s.steps.empty()) << s.name;
        EXPECT_FALSE(s.checks.empty()) << s.name;
        for (const auto &m : s.modules)
            covered.insert(m.name);
        // Every module must actually be dispatched by the schedule.
        std::set<size_t> used;
        for (const auto &st : s.steps)
            used.insert(st.module);
        EXPECT_EQ(used.size(), s.modules.size()) << s.name;
    }
    EXPECT_EQ(covered, expected);
}

TEST(GoldenCoverage, LookupByNameWorks)
{
    EXPECT_EQ(goldenScenarioByName("gaussian").name, "gaussian");
    EXPECT_GE(goldenScenarioByName("bfs").steps.size(), 2u);
    EXPECT_EQ(goldenScenarioByName("srad").modules.size(), 3u);
    EXPECT_EQ(goldenScenarioByName("kmeans").modules.size(), 2u);
}

/** Micro-op fusion must be observably invisible on every kernel shape
 *  in the suite: replaying a scenario with lowering fusion disabled
 *  must produce bit-identical checked buffers (not merely within
 *  tolerance). */
TEST_P(GoldenReference, FusionIsBitInvisible)
{
    const GoldenScenario &s = *GetParam();
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    for (sim::Api api : allApis) {
        GoldenOutcome fused = runGoldenScenario(s, dev, api);
        sim::LowerOptions no_fusion = sim::LowerOptions::noFusion();
        GoldenOutcome plain = runGoldenScenario(s, dev, api, &no_fusion);
        ASSERT_TRUE(fused.ran) << fused.skipReason;
        ASSERT_TRUE(plain.ran) << plain.skipReason;
        ASSERT_EQ(fused.checkedBuffers.size(),
                  plain.checkedBuffers.size());
        for (size_t c = 0; c < fused.checkedBuffers.size(); ++c)
            EXPECT_EQ(fused.checkedBuffers[c], plain.checkedBuffers[c])
                << s.name << " check " << c << " on "
                << sim::apiName(api);
    }
}

} // namespace
} // namespace vcb::suite

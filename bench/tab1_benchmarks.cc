/**
 * @file
 * Regenerates Table I: the VComputeBench benchmarks with their dwarf
 * and application domain, straight from the suite registry.
 */

#include <cstdio>

#include "harness/report.h"
#include "suite/benchmark.h"

int
main()
{
    using namespace vcb;
    std::printf("TABLE I: VComputeBench benchmarks\n\n");
    harness::Table table({"Name", "Application", "Dwarf", "Domain"});
    for (const suite::Benchmark *b : suite::registry())
        table.addRow({b->name(), b->fullName(), b->dwarf(), b->domain()});
    std::printf("%s\n", table.render().c_str());
    std::printf("(paper Table I lists the first nine rows; srad, kmeans"
                " and streamcluster\nextend the suite with the same"
                " Rodinia-derived methodology)\n");
    return 0;
}

/**
 * @file
 * Regenerates Table I (the VComputeBench benchmarks with dwarf,
 * domain and the admissible Vulkan submission strategies the workload
 * layer derives from each declared host program) as a thin wrapper
 * over the shared report-book renderer — the exact section
 * `vcb_report` embeds in docs/RESULTS.md.
 */

#include <cstdio>

#include "harness/report_book.h"

int
main()
{
    std::fputs(vcb::harness::renderTab1Section().c_str(), stdout);
    return 0;
}

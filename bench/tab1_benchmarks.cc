/**
 * @file
 * Regenerates Table I: the VComputeBench benchmarks with their dwarf
 * and application domain, straight from the suite registry — plus the
 * submission-strategy axis the workload layer derives from each
 * benchmark's declared host program (which Vulkan strategies its shape
 * admits, and which one the paper's method prefers).
 */

#include <cstdio>
#include <string>

#include "harness/report.h"
#include "suite/benchmark.h"

int
main()
{
    using namespace vcb;
    std::printf("TABLE I: VComputeBench benchmarks\n\n");
    harness::Table table({"Name", "Application", "Dwarf", "Domain",
                          "Vulkan submit strategies"});
    for (const suite::Benchmark *b : suite::registry()) {
        // The smallest desktop size decides the program shape; the
        // strategy set is a property of the host structure, not the
        // input scale.
        suite::Workload w = b->workload(b->desktopSizes()[0]);
        std::string strategies;
        for (suite::SubmitStrategy s : suite::applicableStrategies(w)) {
            if (!strategies.empty())
                strategies += ", ";
            strategies += suite::strategyName(s);
            if (s == w.preferred)
                strategies += "*";
        }
        table.addRow({b->name(), b->fullName(), b->dwarf(), b->domain(),
                      strategies});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(paper Table I lists the first nine rows; srad, kmeans"
                " and streamcluster\nextend the suite with the same"
                " Rodinia-derived methodology.  * = the strategy\nthe"
                " paper's method prefers; every strategy listed for a"
                " benchmark produces\nbit-identical outputs — see"
                " bench/abl_command_buffer and tests/test_workload.)\n");
    return 0;
}

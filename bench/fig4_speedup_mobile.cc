/**
 * @file
 * Regenerates Figure 4: per-benchmark speedups vs OpenCL on the two
 * mobile platforms (4a: Nexus / PowerVR G6430; 4b: Snapdragon /
 * Adreno 506).
 *
 * Paper anchors: geomean Vulkan 1.59x on the Nexus (hotspot is the
 * lone slowdown: weak shared-memory codegen) but 0.83x on the
 * Snapdragon (immature Vulkan driver; only pathfinder wins).  cfd is
 * absent (datasets do not fit), backprop fails on the Nexus under
 * both APIs, and lud's OpenCL build fails on the Snapdragon — all
 * reproduced through the driver profiles.
 */

#include <cstdio>

#include "harness/figures.h"

int
main()
{
    using namespace vcb;
    for (const sim::DeviceSpec *dev :
         {&sim::powervrG6430(), &sim::adreno506()}) {
        harness::FigureData fig = harness::runSpeedupFigure(*dev, true);
        std::printf("%s\n", harness::formatSpeedupFigure(fig).c_str());
    }
    std::printf("paper anchors: Nexus geomean Vulkan/OpenCL 1.59x; "
                "Snapdragon 0.83x\n");
    return 0;
}

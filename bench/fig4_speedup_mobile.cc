/**
 * @file
 * Regenerates Figure 4 (per-benchmark speedups vs OpenCL on the
 * mobile platforms) as a thin wrapper over the shared report-book
 * renderer (src/harness/report_book.h): the benchmarks run through
 * the declarative workload layer, wholesale mobile skips and driver
 * failures come from the device profiles, and the printed section is
 * the exact text `vcb_report` embeds in docs/RESULTS.md.
 *
 * Paper anchors: geomean Vulkan 1.59x on the Nexus (hotspot is the
 * lone slowdown: weak shared-memory codegen) but 0.83x on the
 * Snapdragon (immature Vulkan driver; only pathfinder wins).  cfd is
 * absent (datasets do not fit), backprop fails on the Nexus under
 * both APIs, and lud's OpenCL build fails on the Snapdragon — all
 * reproduced through the driver profiles.
 *
 * Default devices are the compiled-in mobile parts; --devices DIR
 * loads a spec directory instead (the post-paper expansion devices
 * included).
 */

#include <cstdio>
#include <cstring>

#include "harness/report_book.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    // --dry-run shrinks every size configuration so CI can smoke-test
    // the figure path; numbers are then NOT comparable to the paper.
    bool dry_run = false;
    std::string devices_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else if (std::strcmp(argv[i], "--devices") == 0 &&
                   i + 1 < argc) {
            devices_dir = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--dry-run] [--devices DIR]\n",
                         argv[0]);
            return 1;
        }
    }
    const std::vector<sim::DeviceSpec> &devices =
        harness::resolveReportDevices(devices_dir);
    const uint64_t scale = harness::speedupScale(true, dry_run);
    std::vector<harness::FigureData> figures;
    for (const sim::DeviceSpec *dev :
         harness::selectDevices(devices, /*mobile=*/true))
        figures.push_back(harness::runSpeedupFigure(*dev, true, scale));
    std::fputs(
        harness::renderSpeedupSection(figures, /*mobile=*/true, scale)
            .c_str(),
        stdout);
    return 0;
}

/**
 * @file
 * Regenerates Figure 4: per-benchmark speedups vs OpenCL on the two
 * mobile platforms (4a: Nexus / PowerVR G6430; 4b: Snapdragon /
 * Adreno 506).
 *
 * Paper anchors: geomean Vulkan 1.59x on the Nexus (hotspot is the
 * lone slowdown: weak shared-memory codegen) but 0.83x on the
 * Snapdragon (immature Vulkan driver; only pathfinder wins).  cfd is
 * absent (datasets do not fit), backprop fails on the Nexus under
 * both APIs, and lud's OpenCL build fails on the Snapdragon — all
 * reproduced through the driver profiles.
 */

#include <cstdio>
#include <cstring>

#include "harness/figures.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    // --dry-run shrinks every size configuration so CI can smoke-test
    // the figure path; numbers are then NOT comparable to the paper.
    bool dry_run = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else {
            std::fprintf(stderr, "usage: %s [--dry-run]\n", argv[0]);
            return 1;
        }
    }
    const uint64_t scale = dry_run ? 16 : 1;
    if (dry_run)
        std::printf("(dry run: sizes / %llu, figures not "
                    "paper-comparable)\n",
                    (unsigned long long)scale);
    for (const sim::DeviceSpec *dev :
         {&sim::powervrG6430(), &sim::adreno506()}) {
        harness::FigureData fig =
            harness::runSpeedupFigure(*dev, true, scale);
        std::printf("%s\n", harness::formatSpeedupFigure(fig).c_str());
    }
    std::printf("paper anchors: Nexus geomean Vulkan/OpenCL 1.59x; "
                "Snapdragon 0.83x\n");
    return 0;
}

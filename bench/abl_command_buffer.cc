/**
 * @file
 * Ablation (paper Sec. IV-C / VI-B, first recommendation): for
 * iterative algorithms, record all iterations into ONE command buffer
 * with memory barriers instead of naively submitting one command
 * buffer per iteration.
 *
 * Uses the pathfinder workload on the GTX 1050 Ti and reports both
 * strategies plus the per-iteration breakdown.  The single-buffer
 * strategy is what the suite's Vulkan runners use; the naive strategy
 * pays submit + fence overhead per iteration (and is still cheaper
 * than OpenCL's launch+sync, which is also shown for reference).
 */

#include <cstdio>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "harness/report.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/vkhelp.h"

using namespace vcb;
using suite::VkContext;
using suite::VkKernel;

namespace {

constexpr uint32_t rows = 64;
constexpr uint32_t cols = 16384;

struct Setup
{
    VkContext ctx;
    VkKernel k;
    vkm::Buffer b_data, b_a, b_b;
    vkm::DescriptorSet s_ab, s_ba;
    uint32_t groups = 0;
};

Setup
prepare(const sim::DeviceSpec &dev, const std::vector<int32_t> &data)
{
    Setup s{VkContext::create(dev), {}, {}, {}, {}, {}, {}, 0};
    std::string err =
        suite::createVkKernel(s.ctx, kernels::buildPathfinderRow(), &s.k);
    VCB_ASSERT(err.empty(), "%s", err.c_str());
    s.b_data = s.ctx.createDeviceBuffer(data.size() * 4);
    s.b_a = s.ctx.createDeviceBuffer(uint64_t(cols) * 4);
    s.b_b = s.ctx.createDeviceBuffer(uint64_t(cols) * 4);
    s.ctx.upload(s.b_data, data.data(), data.size() * 4);
    s.ctx.upload(s.b_a, data.data(), uint64_t(cols) * 4);
    s.s_ab = makeDescriptorSet(s.ctx, s.k,
                               {{0, s.b_data}, {1, s.b_a}, {2, s.b_b}});
    s.s_ba = makeDescriptorSet(s.ctx, s.k,
                               {{0, s.b_data}, {1, s.b_b}, {2, s.b_a}});
    s.groups = (uint32_t)ceilDiv(cols, 256);
    return s;
}

void
recordIteration(Setup &s, vkm::CommandBuffer cb, uint32_t r)
{
    vkm::cmdBindDescriptorSet(cb, s.k.layout, 0,
                              (r % 2 == 1) ? s.s_ab : s.s_ba);
    uint32_t push[2] = {cols, r};
    vkm::cmdPushConstants(cb, s.k.layout, 0, 8, push);
    vkm::cmdDispatch(cb, s.groups, 1, 1);
    vkm::cmdPipelineBarrier(cb);
}

double
runSingleBuffer(Setup &s)
{
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(s.ctx.device, s.ctx.cmdPool,
                                          &cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, s.k.pipeline);
    for (uint32_t r = 1; r < rows; ++r)
        recordIteration(s, cb, r);
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");

    vkm::Fence fence;
    vkm::check(vkm::createFence(s.ctx.device, &fence), "createFence");
    double t0 = s.ctx.now();
    vkm::SubmitInfo si;
    si.commandBuffers.push_back(cb);
    vkm::check(vkm::queueSubmit(s.ctx.queue, {si}, fence), "queueSubmit");
    vkm::check(vkm::waitForFences(s.ctx.device, {fence}),
               "waitForFences");
    return s.ctx.now() - t0;
}

double
runNaivePerIteration(Setup &s)
{
    vkm::Fence fence;
    vkm::check(vkm::createFence(s.ctx.device, &fence), "createFence");
    double t0 = s.ctx.now();
    for (uint32_t r = 1; r < rows; ++r) {
        vkm::CommandBuffer cb;
        vkm::check(vkm::allocateCommandBuffer(s.ctx.device,
                                              s.ctx.cmdPool, &cb),
                   "allocateCommandBuffer");
        vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
        vkm::cmdBindPipeline(cb, s.k.pipeline);
        recordIteration(s, cb, r);
        vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");
        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::check(vkm::queueSubmit(s.ctx.queue, {si}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(s.ctx.device, {fence}),
                   "waitForFences");
        vkm::check(vkm::resetFences(s.ctx.device, {fence}),
                   "resetFences");
    }
    return s.ctx.now() - t0;
}

double
runOpenClBaseline(const sim::DeviceSpec &dev,
                  const std::vector<int32_t> &data)
{
    ocl::Context ctx(dev);
    auto prog = ocl::createProgramWithSource(
        ctx, kernels::buildPathfinderRow());
    std::string err;
    bool built = ocl::buildProgram(prog, &err);
    VCB_ASSERT(built, "%s", err.c_str());
    auto k = ocl::createKernel(prog, "pathfinder_row", &err);
    auto b_data = ocl::createBuffer(ctx, ocl::MemReadOnly,
                                    data.size() * 4);
    auto b_a = ocl::createBuffer(ctx, ocl::MemReadWrite,
                                 uint64_t(cols) * 4);
    auto b_b = ocl::createBuffer(ctx, ocl::MemReadWrite,
                                 uint64_t(cols) * 4);
    ocl::enqueueWriteBuffer(ctx, b_data, true, 0, data.size() * 4,
                            data.data());
    ocl::enqueueWriteBuffer(ctx, b_a, true, 0, uint64_t(cols) * 4,
                            data.data());
    double t0 = ctx.hostNowNs();
    for (uint32_t r = 1; r < rows; ++r) {
        ocl::setKernelArgBuffer(k, 0, b_data);
        ocl::setKernelArgBuffer(k, 1, (r % 2 == 1) ? b_a : b_b);
        ocl::setKernelArgBuffer(k, 2, (r % 2 == 1) ? b_b : b_a);
        ocl::setKernelArgScalar(k, 0, cols);
        ocl::setKernelArgScalar(k, 1, r);
        ocl::enqueueNDRangeKernel(ctx, k,
                                  (uint32_t)ceilDiv(cols, 256) * 256);
        ctx.finish();
    }
    return ctx.hostNowNs() - t0;
}

} // namespace

int
main()
{
    Rng rng(7);
    std::vector<int32_t> data(uint64_t(rows) * cols);
    for (auto &v : data)
        v = static_cast<int32_t>(rng.nextBelow(10));

    const sim::DeviceSpec &dev = sim::gtx1050ti();
    std::printf("Ablation: one command buffer + barriers vs one "
                "submission per iteration\n");
    std::printf("workload: pathfinder %ux%u on %s\n\n", rows, cols,
                dev.name.c_str());

    Setup s1 = prepare(dev, data);
    double single_ns = runSingleBuffer(s1);
    Setup s2 = prepare(dev, data);
    double naive_ns = runNaivePerIteration(s2);
    double opencl_ns = runOpenClBaseline(dev, data);

    harness::Table table({"strategy", "kernel region", "per iteration",
                          "vs single-CB"});
    auto row = [&](const char *name, double ns) {
        table.addRow({name, formatNs(ns),
                      formatNs(ns / (rows - 1)),
                      harness::fmtF(ns / single_ns, 2) + "x"});
    };
    row("Vulkan, single command buffer", single_ns);
    row("Vulkan, naive per-iteration submits", naive_ns);
    row("OpenCL multi-kernel method", opencl_ns);
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: recording all iterations into one command "
                "buffer is the first recommended optimisation\n");
    return 0;
}

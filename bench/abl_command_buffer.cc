/**
 * @file
 * Ablation (paper Sec. IV-C / VI-B, first recommendation, extended
 * suite-wide): for iterative algorithms, record work into command
 * buffers instead of naively submitting per iteration.
 *
 * The submission strategy is a runner parameter of the workload layer
 * (suite/workload.h), so this ablation sweeps EVERY benchmark across
 * every strategy its host program admits — the paper's Sec. V
 * launch-overhead analysis over all 12 real workloads rather than one
 * microbenchmark:
 *
 *   batched      — N iterations per command buffer (the paper's
 *                  recommendation; default batch = all),
 *   record-once  — one body command buffer resubmitted per iteration,
 *   re-record    — reset + re-record per iteration (the naive
 *                  baseline, paying submit + fence per iteration),
 *
 * with the OpenCL multi-kernel method as the cross-API reference.
 * Outputs are checked bit-identical across strategies as we go.
 *
 *   abl_command_buffer           full sweep on the GTX 1050 Ti
 *   abl_command_buffer --smoke   record-once vs re-record on two
 *                                converge-loop benchmarks (bfs,
 *                                kmeans); exits non-zero on any
 *                                output/launch mismatch (the ctest
 *                                strategy-ablation smoke)
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strutil.h"
#include "harness/report.h"
#include "suite/benchmark.h"

using namespace vcb;

namespace {

struct StrategyRun
{
    suite::SubmitStrategy strategy;
    suite::RunResult result;
    suite::HostArrays host;
};

/** Run `w` under every applicable Vulkan strategy, in enum order
 *  (record-once, re-record, batched).  `bit_identical` reports
 *  whether every run agreed with the first on host arrays and launch
 *  count. */
std::vector<StrategyRun>
sweepWorkload(const suite::Workload &w, const sim::DeviceSpec &dev,
              bool *bit_identical)
{
    std::vector<StrategyRun> runs;
    for (suite::SubmitStrategy s : suite::applicableStrategies(w)) {
        StrategyRun r;
        r.strategy = s;
        suite::WorkloadOptions opts;
        opts.strategy = s;
        r.result = suite::runWorkloadVulkan(w, dev, opts, &r.host);
        runs.push_back(std::move(r));
    }
    *bit_identical = true;
    for (size_t i = 1; i < runs.size(); ++i) {
        if (runs[i].host != runs[0].host ||
            runs[i].result.launches != runs[0].result.launches)
            *bit_identical = false;
    }
    return runs;
}

int
runSmoke(const sim::DeviceSpec &dev)
{
    // The strategy contrast that is easiest to get wrong: converge
    // loops whose body command buffer is recorded once and resubmitted
    // (bfs's frontier loop, kmeans's centroid loop) vs re-recorded.
    int failures = 0;
    for (const char *name : {"bfs", "kmeans"}) {
        const suite::Benchmark &bench = suite::byName(name);
        suite::Workload w = bench.workload(bench.desktopSizes()[0]);
        suite::HostArrays host_once, host_rerec;
        suite::WorkloadOptions once, rerec;
        once.strategy = suite::SubmitStrategy::RecordOnce;
        rerec.strategy = suite::SubmitStrategy::ReRecord;
        suite::RunResult a =
            suite::runWorkloadVulkan(w, dev, once, &host_once);
        suite::RunResult b =
            suite::runWorkloadVulkan(w, dev, rerec, &host_rerec);
        bool ok = a.ok && b.ok && a.validated && b.validated &&
                  a.launches == b.launches && host_once == host_rerec;
        std::printf("%-8s record-once %s (%llu launches)  "
                    "re-record %s (%llu launches)  outputs %s\n",
                    name, a.validated ? "ok" : "FAILED",
                    (unsigned long long)a.launches,
                    b.validated ? "ok" : "FAILED",
                    (unsigned long long)b.launches,
                    ok ? "bit-identical" : "MISMATCH");
        if (!ok)
            ++failures;
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0)
        return runSmoke(dev);

    std::printf("Ablation: Vulkan submission strategy, suite-wide "
                "(%s, smallest desktop sizes)\n\n",
                dev.name.c_str());

    harness::Table table({"bench", "strategy", "kernel region",
                          "per launch", "vs preferred", "OpenCL"});
    bool all_identical = true;
    for (const suite::Benchmark *bench : suite::registry()) {
        suite::Workload w = bench->workload(bench->desktopSizes()[0]);
        bool bit_identical = false;
        std::vector<StrategyRun> runs =
            sweepWorkload(w, dev, &bit_identical);
        all_identical = all_identical && bit_identical;

        double preferred_ns = 0;
        for (const StrategyRun &r : runs)
            if (r.strategy == w.preferred)
                preferred_ns = r.result.kernelRegionNs;

        suite::RunResult cl =
            suite::runWorkloadOcl(w, dev, nullptr);
        for (const StrategyRun &r : runs) {
            const suite::RunResult &res = r.result;
            std::string marker =
                r.strategy == w.preferred ? "*" : " ";
            table.addRow(
                {bench->name() + marker,
                 suite::strategyName(r.strategy),
                 formatNs(res.kernelRegionNs),
                 formatNs(res.kernelRegionNs /
                          double(std::max<uint64_t>(res.launches, 1))),
                 preferred_ns > 0
                     ? harness::fmtF(res.kernelRegionNs / preferred_ns,
                                     2) +
                           "x"
                     : "-",
                 cl.ok ? harness::fmtF(cl.kernelRegionNs /
                                           res.kernelRegionNs,
                                       2) +
                             "x"
                       : "-"});
        }
        VCB_ASSERT(bit_identical,
                   "%s: strategies disagree on outputs or launches",
                   bench->name().c_str());
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("* = the workload's preferred strategy.  'OpenCL' is "
                "the speedup of that row's\nVulkan strategy over the "
                "OpenCL multi-kernel method.  All strategies of every\n"
                "benchmark produced bit-identical outputs: %s\n",
                all_identical ? "yes" : "NO");
    std::printf("paper: recording all iterations into one command "
                "buffer is the first recommended optimisation\n");
    return all_identical ? 0 : 1;
}

/**
 * @file
 * Regenerates Figure 2 (per-benchmark speedups vs the OpenCL baseline
 * on the desktop GPUs) as a thin wrapper over the shared report-book
 * renderer (src/harness/report_book.h): the benchmarks run through
 * the declarative workload layer at each device's preferred Vulkan
 * submission strategy, and the printed section is the exact text
 * `vcb_report` embeds in docs/RESULTS.md.
 *
 * Paper anchors: geomean Vulkan 1.53x vs CUDA and 1.66x vs OpenCL on
 * the GTX 1050 Ti, 1.26x vs OpenCL on the RX 560; best speedups on
 * the blocking-iterative benchmarks (pathfinder, hotspot, lud,
 * gaussian); bfs *slows down* on both parts (immature SPIR-V
 * compiler); cfd only marginal; backprop/nn/nw near parity.
 *
 * Default devices are the compiled-in desktop parts; --devices DIR
 * loads a spec directory instead.
 */

#include <cstdio>
#include <cstring>

#include "harness/report_book.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    // --dry-run shrinks every size configuration so CI can smoke-test
    // the figure path; numbers are then NOT comparable to the paper.
    bool dry_run = false;
    std::string devices_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else if (std::strcmp(argv[i], "--devices") == 0 &&
                   i + 1 < argc) {
            devices_dir = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--dry-run] [--devices DIR]\n",
                         argv[0]);
            return 1;
        }
    }
    const std::vector<sim::DeviceSpec> &devices =
        harness::resolveReportDevices(devices_dir);
    const uint64_t scale = harness::speedupScale(false, dry_run);
    std::vector<harness::FigureData> figures;
    for (const sim::DeviceSpec *dev :
         harness::selectDevices(devices, /*mobile=*/false))
        figures.push_back(
            harness::runSpeedupFigure(*dev, false, scale));
    std::fputs(
        harness::renderSpeedupSection(figures, /*mobile=*/false, scale)
            .c_str(),
        stdout);
    return 0;
}

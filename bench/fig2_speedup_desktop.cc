/**
 * @file
 * Regenerates Figure 2: per-benchmark speedups vs the OpenCL baseline
 * on the two desktop GPUs (2a: GTX 1050 Ti with OpenCL/Vulkan/CUDA;
 * 2b: RX 560 with OpenCL/Vulkan).
 *
 * Paper anchors: geomean Vulkan 1.53x vs CUDA and 1.66x vs OpenCL on
 * the GTX 1050 Ti, 1.26x vs OpenCL on the RX 560; best speedups on
 * the blocking-iterative benchmarks (pathfinder, hotspot, lud,
 * gaussian); bfs *slows down* on both parts (immature SPIR-V
 * compiler); cfd only marginal; backprop/nn/nw near parity.
 */

#include <cstdio>
#include <cstring>

#include "harness/figures.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    // --dry-run shrinks every size configuration so CI can smoke-test
    // the figure path; numbers are then NOT comparable to the paper.
    bool dry_run = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else {
            std::fprintf(stderr, "usage: %s [--dry-run]\n", argv[0]);
            return 1;
        }
    }
    const uint64_t scale = dry_run ? 64 : 1;
    if (dry_run)
        std::printf("(dry run: sizes / %llu, figures not "
                    "paper-comparable)\n",
                    (unsigned long long)scale);
    for (const sim::DeviceSpec *dev :
         {&sim::gtx1050ti(), &sim::rx560()}) {
        harness::FigureData fig =
            harness::runSpeedupFigure(*dev, false, scale);
        std::printf("%s\n", harness::formatSpeedupFigure(fig).c_str());
        if (!fig.allValidated())
            std::printf("WARNING: some runs failed validation!\n");
    }
    std::printf("paper anchors: GTX1050Ti geomean Vulkan/OpenCL 1.66x, "
                "Vulkan/CUDA 1.53x; RX560 Vulkan/OpenCL 1.26x\n");
    return 0;
}

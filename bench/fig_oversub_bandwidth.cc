/**
 * @file
 * Regenerates the oversubscribed-bandwidth sweep section (UVM
 * expansion parts) as a thin wrapper over the shared report-book
 * renderer (src/harness/report_book.h) — the exact section
 * `vcb_report` embeds in docs/RESULTS.md, so the standalone figure
 * cannot drift from the book.
 *
 * The sweep runs a unit-stride read over working sets from 0.5x to 2x
 * the modeled device-local heap on every device whose spec enables
 * UVM paging (unified_memory = true, uvm_oversubscription > 1): the
 * sub-heap factors stay device-local, the super-heap factors page
 * through the shared pool and pay first-touch migration plus the
 * oversubscribed-bandwidth derate — the knee the section exists to
 * show.  Hard-cap parts contribute no panel.
 *
 * Default devices are the compiled-in parts (no UVM parts there, so
 * the section renders its placeholder); --devices DIR loads a spec
 * directory — the committed devices/ tree includes the UVM-enabled
 * adreno640 and mali_g76 expansion parts.
 */

#include <cstdio>
#include <cstring>

#include "harness/report_book.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    bool dry_run = false;
    std::string devices_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else if (std::strcmp(argv[i], "--devices") == 0 &&
                   i + 1 < argc) {
            devices_dir = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--dry-run] [--devices DIR]\n",
                         argv[0]);
            return 1;
        }
    }
    const std::vector<sim::DeviceSpec> &devices =
        harness::resolveReportDevices(devices_dir);
    // Registry order, every device: panels plan empty on non-UVM
    // parts, exactly as buildReportBook stores them.
    std::vector<harness::OversubPanel> panels;
    for (const sim::DeviceSpec &dev : devices) {
        suite::OversubConfig cfg;
        harness::OversubPanel panel =
            harness::planOversubPanel(dev, dry_run, cfg);
        for (int a = 0; a < sim::apiCount; ++a)
            if (panel.apiRun[a])
                harness::runOversubPanelApi(
                    panel, static_cast<sim::Api>(a), dev, cfg);
        panels.push_back(std::move(panel));
    }
    std::fputs(harness::renderOversubSection(panels, dry_run).c_str(),
               stdout);
    return 0;
}

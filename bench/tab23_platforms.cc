/**
 * @file
 * Regenerates Tables II and III (desktop and mobile experimental
 * setups) as a thin wrapper over the shared report-book renderer —
 * the exact section `vcb_report` embeds in docs/RESULTS.md.
 *
 * Default devices are the compiled-in paper parts; --devices DIR
 * loads a spec directory instead, so spec-file-only expansion devices
 * appear without recompilation.
 */

#include <cstdio>
#include <cstring>

#include "harness/report_book.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    std::string devices_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
            devices_dir = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--devices DIR]\n",
                         argv[0]);
            return 1;
        }
    }
    const std::vector<sim::DeviceSpec> &devices =
        harness::resolveReportDevices(devices_dir);
    std::fputs(harness::renderTab23Section(devices).c_str(), stdout);
    return 0;
}

/**
 * @file
 * Regenerates Tables II and III: the desktop and mobile experimental
 * setups, from the simulated device registry.
 */

#include <cstdio>

#include "common/logging.h"
#include "harness/report.h"
#include "sim/device.h"

using namespace vcb;

namespace {

void
printPlatforms(bool mobile, const char *title)
{

    std::printf("%s\n\n", title);
    harness::Table table({"Device", "Platform", "OpenCL", "CUDA",
                          "Vulkan", "Heap", "Push"});
    for (const auto &dev : sim::deviceRegistry()) {
        if (dev.mobile != mobile)
            continue;
        auto ver = [&](sim::Api api) {
            const auto &p = dev.profile(api);
            return p.available ? p.version : std::string("-");
        };
        table.addRow({dev.name, dev.platform, ver(sim::Api::OpenCl),
                      ver(sim::Api::Cuda), ver(sim::Api::Vulkan),
                      strprintf("%llu MiB",
                                (unsigned long long)(dev.deviceHeapBytes >>
                                                     20)),
                      strprintf("%u B", dev.maxPushBytes)});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    printPlatforms(false, "TABLE II: Desktop GPUs experimental setup");
    printPlatforms(true, "TABLE III: Mobile GPUs experimental setup");
    return 0;
}

/**
 * @file
 * Regenerates Figure 1 (strided memory bandwidth, desktop GPUs) as a
 * thin wrapper over the shared report-book renderer
 * (src/harness/report_book.h) — the exact section `vcb_report` embeds
 * in docs/RESULTS.md, so the standalone figure cannot drift from the
 * book.
 *
 * Paper anchors: unit stride reaches 84 % (CUDA) / 79.6 % (Vulkan) of
 * the 112 GB/s peak on the GTX 1050 Ti and 71.6 % / 71.5 %
 * (Vulkan/OpenCL) on the RX 560; Vulkan pulls slightly ahead beyond
 * 64-byte strides on both parts.
 *
 * Default devices are the compiled-in desktop parts; --devices DIR
 * loads a spec directory instead (every desktop entry gets a panel).
 */

#include <cstdio>
#include <cstring>

#include "harness/report_book.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    // --dry-run: tiny sweep so CI can smoke-test the figure path;
    // numbers are then NOT comparable to the paper.
    bool dry_run = false;
    std::string devices_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else if (std::strcmp(argv[i], "--devices") == 0 &&
                   i + 1 < argc) {
            devices_dir = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--dry-run] [--devices DIR]\n",
                         argv[0]);
            return 1;
        }
    }
    const std::vector<sim::DeviceSpec> &devices =
        harness::resolveReportDevices(devices_dir);
    std::vector<harness::BandwidthPanel> panels;
    for (const sim::DeviceSpec *dev :
         harness::selectDevices(devices, /*mobile=*/false))
        panels.push_back(harness::runBandwidthPanel(*dev, dry_run));
    std::fputs(
        harness::renderBandwidthSection(panels, /*mobile=*/false,
                                        dry_run)
            .c_str(),
        stdout);
    return 0;
}

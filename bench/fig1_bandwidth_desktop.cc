/**
 * @file
 * Regenerates Figure 1: strided memory bandwidth on the desktop GPUs.
 *
 * 1a: GTX 1050 Ti, Vulkan vs CUDA.   1b: RX 560, Vulkan vs OpenCL.
 * Paper anchors: unit stride reaches 84 % (CUDA) / 79.6 % (Vulkan) of
 * the 112 GB/s peak on the GTX 1050 Ti and 71.6 % / 71.5 %
 * (Vulkan/OpenCL) on the RX 560; Vulkan pulls slightly ahead beyond
 * 64-byte strides on both parts.
 */

#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "harness/report.h"
#include "suite/bandwidth.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    // --dry-run: tiny sweep so CI can smoke-test the figure path;
    // numbers are then NOT comparable to the paper.
    bool dry_run = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else {
            std::fprintf(stderr, "usage: %s [--dry-run]\n", argv[0]);
            return 1;
        }
    }
    const std::vector<uint32_t> strides = {1, 4, 8, 12, 16, 20, 24, 28,
                                           32};
    suite::BandwidthConfig cfg;
    cfg.threads = dry_run ? 2048 : 16384;
    cfg.rounds = dry_run ? 8 : 64;
    cfg.repeats = dry_run ? 1 : 3;
    if (dry_run)
        std::printf("(dry run: reduced sizes, figures not "
                    "paper-comparable)\n");

    struct Panel
    {
        const sim::DeviceSpec *dev;
        sim::Api other;
        const char *other_name;
    };
    const Panel panels[] = {
        {&sim::gtx1050ti(), sim::Api::Cuda, "CUDA"},
        {&sim::rx560(), sim::Api::OpenCl, "OpenCL"},
    };

    for (const Panel &panel : panels) {
        std::printf("=== Fig. 1: %s (peak %.0f GB/s) ===\n",
                    panel.dev->name.c_str(), panel.dev->peakBwGBs);
        auto vk = suite::runBandwidthSweep(*panel.dev, sim::Api::Vulkan,
                                           strides, cfg);
        auto other = suite::runBandwidthSweep(*panel.dev, panel.other,
                                              strides, cfg);
        harness::Table table({"stride (4B elems)", "Vulkan GB/s",
                              std::string(panel.other_name) + " GB/s",
                              "Vulkan %peak"});
        for (size_t i = 0; i < strides.size(); ++i) {
            table.addRow(
                {strprintf("%u", strides[i]),
                 harness::fmtF(vk[i].gbPerSec),
                 harness::fmtF(other[i].gbPerSec),
                 harness::fmtF(vk[i].gbPerSec / panel.dev->peakBwGBs *
                               100.0, 1)});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\nunit stride: Vulkan %.1f%% of peak, %s %.1f%% "
                    "of peak\n\n",
                    vk[0].gbPerSec / panel.dev->peakBwGBs * 100.0,
                    panel.other_name,
                    other[0].gbPerSec / panel.dev->peakBwGBs * 100.0);
    }
    return 0;
}

/**
 * @file
 * Ablation (paper Sec. VI-B, second recommendation): for small
 * parameter changes, prefer vkCmdPushConstants over re-writing a
 * parameter buffer.
 *
 * Runs the gaussian elimination loop twice on the GTX 1050 Ti: once
 * with per-step (n, t) delivered by push constants (the suite
 * default) and once with a parameter buffer updated via a device copy
 * before every step.  Also reports the push-constant limits of every
 * registered device (paper: 256 B on the GTX 1050 Ti, 128 B on the
 * RX 560 and both mobiles).
 */

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "harness/report.h"
#include "kernels/kernels.h"
#include "spirv/builder.h"
#include "suite/vkhelp.h"

using namespace vcb;
using suite::VkContext;
using suite::VkKernel;

namespace {

constexpr uint32_t n = 128;

/** gaussian_fan2 variant reading (n, t) from a storage buffer at
 *  binding 3 instead of push constants. */
spirv::Module
buildFan2ParamBuffer()
{
    using spirv::Builder;
    using spirv::ElemType;
    Builder b("gaussian_fan2_parambuf", 256);
    b.bindStorage(0, ElemType::F32);       // a
    b.bindStorage(1, ElemType::F32, true); // m
    b.bindStorage(2, ElemType::F32);       // b
    b.bindStorage(3, ElemType::I32, true); // params: [0]=n, [1]=t

    auto gid = b.globalIdX();
    auto zero = b.constI(0);
    auto one = b.constI(1);
    auto nn = b.ldBuf(3, zero);
    auto t = b.ldBuf(3, one);

    auto rows = b.isub(b.isub(nn, one), t);
    auto cols = b.isub(nn, t);
    auto total = b.imul(rows, cols);
    auto in_range = b.ult(gid, total);
    b.ifThen(in_range, [&] {
        auto r = b.idiv(gid, cols);
        auto c = b.irem(gid, cols);
        auto row = b.iadd(b.iadd(r, t), one);
        auto col = b.iadd(c, t);
        auto mult = b.ldBuf(1, b.iadd(b.imul(row, nn), t));
        auto idx = b.iadd(b.imul(row, nn), col);
        auto pivot_row = b.ldBuf(0, b.iadd(b.imul(t, nn), col));
        auto v = b.fsub(b.ldBuf(0, idx), b.fmul(mult, pivot_row));
        b.stBuf(0, idx, v);
        auto fix_b = b.ieq(c, zero);
        b.ifThen(fix_b, [&] {
            auto bt = b.ldBuf(2, t);
            auto brow = b.ldBuf(2, row);
            b.stBuf(2, row, b.fsub(brow, b.fmul(mult, bt)));
        });
    });
    return b.finish();
}

} // namespace

int
main()
{
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    std::printf("Ablation: push constants vs parameter buffer "
                "(gaussian fan2, n=%u, %u steps, %s)\n\n",
                n, n - 1, dev.name.c_str());

    Rng rng(13);
    std::vector<float> a(uint64_t(n) * n), bvec(n);
    for (uint32_t i = 0; i < n; ++i) {
        float sum = 0;
        for (uint32_t j = 0; j < n; ++j) {
            a[uint64_t(i) * n + j] = rng.nextFloat(0.1f, 1.0f);
            sum += a[uint64_t(i) * n + j];
        }
        a[uint64_t(i) * n + i] = sum + 1.0f;
        bvec[i] = rng.nextFloat(0.0f, 10.0f);
    }

    // --- Variant A: push constants (plus fan1, as in the suite).
    double push_ns = 0;
    {
        VkContext ctx = VkContext::create(dev);
        VkKernel k1, k2;
        std::string err =
            suite::createVkKernel(ctx, kernels::buildGaussianFan1(), &k1);
        if (err.empty())
            err = suite::createVkKernel(ctx,
                                        kernels::buildGaussianFan2(),
                                        &k2);
        VCB_ASSERT(err.empty(), "%s", err.c_str());
        auto b_a = ctx.createDeviceBuffer(a.size() * 4);
        auto b_m = ctx.createDeviceBuffer(a.size() * 4);
        auto b_b = ctx.createDeviceBuffer(n * 4);
        ctx.upload(b_a, a.data(), a.size() * 4);
        ctx.upload(b_b, bvec.data(), n * 4);
        auto s1 = makeDescriptorSet(ctx, k1, {{0, b_a}, {1, b_m}});
        auto s2 = makeDescriptorSet(ctx, k2,
                                    {{0, b_a}, {1, b_m}, {2, b_b}});

        vkm::CommandBuffer cb;
        vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool,
                                              &cb),
                   "allocateCommandBuffer");
        vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
        for (uint32_t t = 0; t + 1 < n; ++t) {
            uint32_t push[2] = {n, t};
            vkm::cmdBindPipeline(cb, k1.pipeline);
            vkm::cmdBindDescriptorSet(cb, k1.layout, 0, s1);
            vkm::cmdPushConstants(cb, k1.layout, 0, 8, push);
            vkm::cmdDispatch(cb, (uint32_t)ceilDiv(n - 1 - t, 256), 1,
                             1);
            vkm::cmdPipelineBarrier(cb);
            vkm::cmdBindPipeline(cb, k2.pipeline);
            vkm::cmdBindDescriptorSet(cb, k2.layout, 0, s2);
            vkm::cmdPushConstants(cb, k2.layout, 0, 8, push);
            vkm::cmdDispatch(
                cb,
                (uint32_t)ceilDiv(uint64_t(n - 1 - t) * (n - t), 256),
                1, 1);
            vkm::cmdPipelineBarrier(cb);
        }
        vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");
        vkm::Fence fence;
        vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
        double t0 = ctx.now();
        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
        push_ns = ctx.now() - t0;
    }

    // --- Variant B: parameter buffer updated by a copy before every
    //     step (what the paper warns against for small scalars).
    double parambuf_ns = 0;
    {
        VkContext ctx = VkContext::create(dev);
        VkKernel k1, k2;
        std::string err =
            suite::createVkKernel(ctx, kernels::buildGaussianFan1(), &k1);
        if (err.empty())
            err = suite::createVkKernel(ctx, buildFan2ParamBuffer(), &k2);
        VCB_ASSERT(err.empty(), "%s", err.c_str());
        auto b_a = ctx.createDeviceBuffer(a.size() * 4);
        auto b_m = ctx.createDeviceBuffer(a.size() * 4);
        auto b_b = ctx.createDeviceBuffer(n * 4);
        ctx.upload(b_a, a.data(), a.size() * 4);
        ctx.upload(b_b, bvec.data(), n * 4);
        // One staged parameter block per step, copied before use.
        auto b_params = ctx.createDeviceBuffer(8);
        auto b_stage = ctx.createDeviceBuffer(uint64_t(n) * 8);
        std::vector<uint32_t> stage(uint64_t(n) * 2);
        for (uint32_t t = 0; t + 1 < n; ++t) {
            stage[2 * t] = n;
            stage[2 * t + 1] = t;
        }
        ctx.upload(b_stage, stage.data(), stage.size() * 4);

        auto s1 = makeDescriptorSet(ctx, k1, {{0, b_a}, {1, b_m}});
        auto s2 = makeDescriptorSet(
            ctx, k2, {{0, b_a}, {1, b_m}, {2, b_b}, {3, b_params}});

        vkm::CommandBuffer cb;
        vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool,
                                              &cb),
                   "allocateCommandBuffer");
        vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
        for (uint32_t t = 0; t + 1 < n; ++t) {
            uint32_t push[2] = {n, t};
            vkm::cmdBindPipeline(cb, k1.pipeline);
            vkm::cmdBindDescriptorSet(cb, k1.layout, 0, s1);
            vkm::cmdPushConstants(cb, k1.layout, 0, 8, push);
            vkm::cmdDispatch(cb, (uint32_t)ceilDiv(n - 1 - t, 256), 1,
                             1);
            vkm::cmdPipelineBarrier(cb);
            // Parameter delivery through a buffer copy + barrier.
            vkm::cmdCopyBuffer(cb, b_stage, b_params,
                               {uint64_t(t) * 8, 0, 8});
            vkm::cmdPipelineBarrier(cb);
            vkm::cmdBindPipeline(cb, k2.pipeline);
            vkm::cmdBindDescriptorSet(cb, k2.layout, 0, s2);
            vkm::cmdDispatch(
                cb,
                (uint32_t)ceilDiv(uint64_t(n - 1 - t) * (n - t), 256),
                1, 1);
            vkm::cmdPipelineBarrier(cb);
        }
        vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");
        vkm::Fence fence;
        vkm::check(vkm::createFence(ctx.device, &fence), "createFence");
        double t0 = ctx.now();
        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::check(vkm::queueSubmit(ctx.queue, {si}, fence),
                   "queueSubmit");
        vkm::check(vkm::waitForFences(ctx.device, {fence}),
                   "waitForFences");
        parambuf_ns = ctx.now() - t0;
    }

    harness::Table table({"variant", "kernel region", "vs push"});
    table.addRow({"push constants", formatNs(push_ns), "1.00x"});
    table.addRow({"parameter buffer + copies", formatNs(parambuf_ns),
                  harness::fmtF(parambuf_ns / push_ns, 2) + "x"});
    std::printf("%s\n", table.render().c_str());

    std::printf("push-constant limits (paper Sec. VI-B):\n");
    for (const auto &d : sim::deviceRegistry())
        std::printf("  %-34s %u B\n", d.name.c_str(), d.maxPushBytes);
    return 0;
}

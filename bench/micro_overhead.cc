/**
 * @file
 * Launch/submission overhead microbenchmarks (google-benchmark).
 *
 * Reports, per device and API, the simulated host cost of issuing an
 * empty-ish kernel and synchronising — the per-iteration tax that the
 * paper's multi-kernel method pays and Vulkan's command buffers
 * amortise.  Simulated nanoseconds are exported as counters (the wall
 * time of the simulator itself is not the quantity of interest).
 */

#include <benchmark/benchmark.h>

#include "common/mathutil.h"
#include "cuda/cuda_rt.h"
#include "kernels/kernels.h"
#include "ocl/ocl.h"
#include "suite/vkhelp.h"

using namespace vcb;

namespace {

constexpr uint32_t tiny = 256; // one workgroup

void
BM_VulkanSubmitSync(benchmark::State &state)
{
    const sim::DeviceSpec &dev =
        sim::deviceRegistry()[static_cast<size_t>(state.range(0))];
    suite::VkContext ctx = suite::VkContext::create(dev);
    suite::VkKernel k;
    std::string err =
        suite::createVkKernel(ctx, kernels::buildVecAdd(), &k);
    if (!err.empty()) {
        state.SkipWithError(err.c_str());
        return;
    }
    auto b_x = ctx.createDeviceBuffer(tiny * 4);
    auto b_y = ctx.createDeviceBuffer(tiny * 4);
    auto b_z = ctx.createDeviceBuffer(tiny * 4);
    auto set = suite::makeDescriptorSet(ctx, k,
                                        {{0, b_x}, {1, b_y}, {2, b_z}});
    vkm::CommandBuffer cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool, &cb),
               "allocateCommandBuffer");
    uint32_t n = tiny;
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
    vkm::cmdPushConstants(cb, k.layout, 0, 4, &n);
    vkm::cmdDispatch(cb, 1, 1, 1);
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");
    vkm::Fence fence;
    vkm::check(vkm::createFence(ctx.device, &fence), "createFence");

    double total_sim_ns = 0;
    for (auto _ : state) {
        double t0 = ctx.now();
        vkm::SubmitInfo si;
        si.commandBuffers.push_back(cb);
        vkm::queueSubmit(ctx.queue, {si}, fence);
        vkm::waitForFences(ctx.device, {fence});
        vkm::resetFences(ctx.device, {fence});
        total_sim_ns += ctx.now() - t0;
    }
    state.counters["sim_ns_per_iter"] =
        total_sim_ns / static_cast<double>(state.iterations());
    state.SetLabel(dev.name);
}

void
BM_OpenClLaunchSync(benchmark::State &state)
{
    const sim::DeviceSpec &dev =
        sim::deviceRegistry()[static_cast<size_t>(state.range(0))];
    ocl::Context ctx(dev);
    auto prog = ocl::createProgramWithSource(ctx, kernels::buildVecAdd());
    std::string err;
    if (!ocl::buildProgram(prog, &err)) {
        state.SkipWithError(err.c_str());
        return;
    }
    auto k = ocl::createKernel(prog, "vectorAdd", &err);
    auto b_x = ocl::createBuffer(ctx, ocl::MemReadOnly, tiny * 4);
    auto b_y = ocl::createBuffer(ctx, ocl::MemReadOnly, tiny * 4);
    auto b_z = ocl::createBuffer(ctx, ocl::MemReadWrite, tiny * 4);
    ocl::setKernelArgBuffer(k, 0, b_x);
    ocl::setKernelArgBuffer(k, 1, b_y);
    ocl::setKernelArgBuffer(k, 2, b_z);
    ocl::setKernelArgScalar(k, 0, tiny);

    double total_sim_ns = 0;
    for (auto _ : state) {
        double t0 = ctx.hostNowNs();
        ocl::enqueueNDRangeKernel(ctx, k, tiny);
        ctx.finish();
        total_sim_ns += ctx.hostNowNs() - t0;
    }
    state.counters["sim_ns_per_iter"] =
        total_sim_ns / static_cast<double>(state.iterations());
    state.SetLabel(dev.name);
}

void
BM_CudaLaunchSync(benchmark::State &state)
{
    const sim::DeviceSpec &dev =
        sim::deviceRegistry()[static_cast<size_t>(state.range(0))];
    if (!cuda::available(dev)) {
        state.SkipWithError("CUDA not supported on this device");
        return;
    }
    cuda::Runtime rt(dev);
    auto f = rt.loadFunction(kernels::buildVecAdd());
    auto d_x = rt.malloc(tiny * 4);
    auto d_y = rt.malloc(tiny * 4);
    auto d_z = rt.malloc(tiny * 4);

    double total_sim_ns = 0;
    for (auto _ : state) {
        double t0 = rt.hostNowNs();
        rt.launchKernel(f, 1, 1, 1, {d_x, d_y, d_z}, {tiny});
        rt.deviceSynchronize();
        total_sim_ns += rt.hostNowNs() - t0;
    }
    state.counters["sim_ns_per_iter"] =
        total_sim_ns / static_cast<double>(state.iterations());
    state.SetLabel(dev.name);
}

} // namespace

BENCHMARK(BM_VulkanSubmitSync)->DenseRange(0, 3)->Iterations(64);
BENCHMARK(BM_OpenClLaunchSync)->DenseRange(0, 3)->Iterations(64);
BENCHMARK(BM_CudaLaunchSync)->Arg(0)->Iterations(64);

BENCHMARK_MAIN();

/**
 * @file
 * Regenerates Figure 3 (strided memory bandwidth, mobile GPUs) as a
 * thin wrapper over the shared report-book renderer
 * (src/harness/report_book.h) — the exact section `vcb_report` embeds
 * in docs/RESULTS.md, so the standalone figure cannot drift from the
 * book.
 *
 * Paper anchors: on the Nexus (PowerVR G6430) OpenCL reaches
 * 2.85 GB/s at unit stride vs 2.69 GB/s for Vulkan (89 % / 84 % of
 * peak), with Vulkan slightly ahead for larger strides; on the
 * Snapdragon (Adreno 506) Vulkan is *worse below 16-byte strides*
 * because the driver implements push constants as buffer rebinds
 * (Sec. V-B1), converging above 16 bytes.
 *
 * Default devices are the compiled-in mobile parts; --devices DIR
 * loads a spec directory instead (every mobile entry gets a panel —
 * the post-paper expansion devices included).
 */

#include <cstdio>
#include <cstring>

#include "harness/report_book.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    // --dry-run: tiny sweep so CI can smoke-test the figure path;
    // numbers are then NOT comparable to the paper.
    bool dry_run = false;
    std::string devices_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else if (std::strcmp(argv[i], "--devices") == 0 &&
                   i + 1 < argc) {
            devices_dir = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--dry-run] [--devices DIR]\n",
                         argv[0]);
            return 1;
        }
    }
    const std::vector<sim::DeviceSpec> &devices =
        harness::resolveReportDevices(devices_dir);
    std::vector<harness::BandwidthPanel> panels;
    for (const sim::DeviceSpec *dev :
         harness::selectDevices(devices, /*mobile=*/true))
        panels.push_back(harness::runBandwidthPanel(*dev, dry_run));
    std::fputs(harness::renderBandwidthSection(panels, /*mobile=*/true,
                                               dry_run)
                   .c_str(),
               stdout);
    return 0;
}

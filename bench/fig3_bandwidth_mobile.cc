/**
 * @file
 * Regenerates Figure 3: strided memory bandwidth on the mobile GPUs
 * (Vulkan vs OpenCL, strides 1..16).
 *
 * Paper anchors: on the Nexus (PowerVR G6430) OpenCL reaches
 * 2.85 GB/s at unit stride vs 2.69 GB/s for Vulkan (89 % / 84 % of
 * peak), with Vulkan slightly ahead for larger strides; on the
 * Snapdragon (Adreno 506) Vulkan is *worse below 16-byte strides*
 * because the driver implements push constants as buffer rebinds
 * (Sec. V-B1), converging above 16 bytes.
 */

#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "harness/report.h"
#include "suite/bandwidth.h"

int
main(int argc, char **argv)
{
    using namespace vcb;
    // --dry-run: tiny sweep so CI can smoke-test the figure path;
    // numbers are then NOT comparable to the paper.
    bool dry_run = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else {
            std::fprintf(stderr, "usage: %s [--dry-run]\n", argv[0]);
            return 1;
        }
    }
    const std::vector<uint32_t> strides = {1, 2, 4, 6, 8, 10, 12, 14,
                                           16};
    suite::BandwidthConfig cfg;
    cfg.threads = dry_run ? 1024 : 4096;
    cfg.rounds = dry_run ? 8 : 32;
    cfg.repeats = dry_run ? 1 : 3;
    if (dry_run)
        std::printf("(dry run: reduced sizes, figures not "
                    "paper-comparable)\n");

    for (const sim::DeviceSpec *dev :
         {&sim::powervrG6430(), &sim::adreno506()}) {
        std::printf("=== Fig. 3: %s (peak %.1f GB/s) ===\n",
                    dev->name.c_str(), dev->peakBwGBs);
        auto vk = suite::runBandwidthSweep(*dev, sim::Api::Vulkan,
                                           strides, cfg);
        auto cl = suite::runBandwidthSweep(*dev, sim::Api::OpenCl,
                                           strides, cfg);
        harness::Table table({"stride (4B elems)", "Vulkan GB/s",
                              "OpenCL GB/s", "Vulkan/OpenCL"});
        for (size_t i = 0; i < strides.size(); ++i) {
            table.addRow({strprintf("%u", strides[i]),
                          harness::fmtF(vk[i].gbPerSec, 3),
                          harness::fmtF(cl[i].gbPerSec, 3),
                          harness::fmtF(vk[i].gbPerSec /
                                        cl[i].gbPerSec, 2)});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\nunit stride: Vulkan %.2f GB/s (%.0f%%), OpenCL "
                    "%.2f GB/s (%.0f%%)\n\n",
                    vk[0].gbPerSec,
                    vk[0].gbPerSec / dev->peakBwGBs * 100.0,
                    cl[0].gbPerSec,
                    cl[0].gbPerSec / dev->peakBwGBs * 100.0);
    }
    return 0;
}

/**
 * @file
 * Ablation (paper Sec. VI-B, last two recommendations): use dedicated
 * transfer queues for large copies, and spread independent kernels
 * over multiple compute queues.
 *
 * Part 1: a large upload executed on the compute queue serialised
 * with a compute pass, vs on the transfer queue overlapped with it.
 * Part 2: four independent nn-style kernels submitted to one compute
 * queue vs to four compute queues (fences join the results) — under
 * both submission strategies of the shared enum (suite/workload.h):
 * batched (each kernel's repeats in one command buffer) and re-record
 * (one submission per repeat), showing that queue-level parallelism
 * and command-buffer batching compose.
 */

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "harness/report.h"
#include "kernels/kernels.h"
#include "suite/vkhelp.h"
#include "suite/workload.h"

using namespace vcb;
using suite::SubmitStrategy;
using suite::VkContext;
using suite::VkKernel;

namespace {

/** A compute pass: several nn_euclid dispatches over n records,
 *  recorded into one command buffer (the batched strategy's shape). */
void
recordComputePass(VkKernel &k, vkm::CommandBuffer cb,
                  vkm::DescriptorSet set, uint32_t n, uint32_t repeats)
{
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
    uint32_t push[3] = {n, 0x42480000u /*50.f*/, 0x42b40000u /*90.f*/};
    vkm::cmdPushConstants(cb, k.layout, 0, 12, push);
    for (uint32_t i = 0; i < repeats; ++i) {
        vkm::cmdDispatch(cb, (uint32_t)ceilDiv(n, 256), 1, 1);
        vkm::cmdPipelineBarrier(cb);
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");
}

double
transferQueuePart(const sim::DeviceSpec &dev, bool use_transfer_queue)
{
    const uint32_t n = 1u << 20;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err = suite::createVkKernel(ctx, kernels::buildNnEuclid(),
                                            &k);
    VCB_ASSERT(err.empty(), "%s", err.c_str());

    uint64_t bytes = uint64_t(n) * 4;
    auto b_lat = ctx.createDeviceBuffer(bytes);
    auto b_lng = ctx.createDeviceBuffer(bytes);
    auto b_dist = ctx.createDeviceBuffer(bytes);
    auto b_upload = ctx.createDeviceBuffer(bytes * 4); // unrelated data
    auto staging = ctx.createHostBuffer(bytes * 4);
    auto set = makeDescriptorSet(ctx, k,
                                 {{0, b_lat}, {1, b_lng}, {2, b_dist}});

    // Compute on the compute queue.
    vkm::CommandBuffer compute_cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool,
                                          &compute_cb),
               "allocateCommandBuffer");
    recordComputePass(k, compute_cb, set, n, 8);

    // The big copy, recorded separately.
    vkm::CommandPool copy_pool;
    vkm::check(vkm::createCommandPool(
                   ctx.device, {use_transfer_queue ? 1u : 0u},
                   &copy_pool),
               "createCommandPool");
    vkm::CommandBuffer copy_cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, copy_pool,
                                          &copy_cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(copy_cb), "beginCommandBuffer");
    vkm::cmdCopyBuffer(copy_cb, staging, b_upload, {0, 0, bytes * 4});
    vkm::check(vkm::endCommandBuffer(copy_cb), "endCommandBuffer");

    vkm::Queue copy_queue =
        use_transfer_queue ? ctx.transferQueue : ctx.queue;

    vkm::Fence f1, f2;
    vkm::check(vkm::createFence(ctx.device, &f1), "createFence");
    vkm::check(vkm::createFence(ctx.device, &f2), "createFence");

    double t0 = ctx.now();
    vkm::SubmitInfo si_copy;
    si_copy.commandBuffers.push_back(copy_cb);
    vkm::check(vkm::queueSubmit(copy_queue, {si_copy}, f1),
               "queueSubmit");
    vkm::SubmitInfo si_comp;
    si_comp.commandBuffers.push_back(compute_cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si_comp}, f2), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {f1, f2}),
               "waitForFences");
    return ctx.now() - t0;
}

/** Part 2 worker: one kernel's worth of work on one queue.  Batched
 *  submits one multi-dispatch command buffer; ReRecord submits one
 *  single-dispatch command buffer per repeat (no fence wait in
 *  between — the queues still pipeline).  Command-buffer recording is
 *  free on the simulated host clock (costs are charged at submit), so
 *  the strategy contrast measured here is pure per-submission
 *  overhead — the same term that separates the strategies in the
 *  suite runner. */
struct Worker
{
    std::vector<vkm::CommandBuffer> cbs; ///< 1 (batched) or `repeats`
    vkm::Fence fence;
};

double
multiQueuePart(const sim::DeviceSpec &dev, uint32_t queues,
               SubmitStrategy strategy)
{
    const uint32_t n = 1u << 20;
    const uint32_t repeats = 4;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err = suite::createVkKernel(ctx, kernels::buildNnEuclid(),
                                            &k);
    VCB_ASSERT(err.empty(), "%s", err.c_str());

    std::vector<vkm::Queue> qs;
    for (uint32_t i = 0; i < queues; ++i)
        qs.push_back(vkm::getDeviceQueue(ctx.device, 0, i));

    uint64_t bytes = uint64_t(n) * 4;
    std::vector<Worker> workers;
    for (uint32_t i = 0; i < 4; ++i) {
        auto b_lat = ctx.createDeviceBuffer(bytes);
        auto b_lng = ctx.createDeviceBuffer(bytes);
        auto b_dist = ctx.createDeviceBuffer(bytes);
        auto set = makeDescriptorSet(
            ctx, k, {{0, b_lat}, {1, b_lng}, {2, b_dist}});
        Worker w;
        uint32_t cb_count =
            strategy == SubmitStrategy::Batched ? 1 : repeats;
        uint32_t per_cb =
            strategy == SubmitStrategy::Batched ? repeats : 1;
        for (uint32_t c = 0; c < cb_count; ++c) {
            vkm::CommandBuffer cb;
            vkm::check(vkm::allocateCommandBuffer(ctx.device,
                                                  ctx.cmdPool, &cb),
                       "allocateCommandBuffer");
            recordComputePass(k, cb, set, n, per_cb);
            w.cbs.push_back(cb);
        }
        vkm::check(vkm::createFence(ctx.device, &w.fence),
                   "createFence");
        workers.push_back(std::move(w));
    }

    double t0 = ctx.now();
    for (uint32_t i = 0; i < 4; ++i) {
        for (size_t c = 0; c < workers[i].cbs.size(); ++c) {
            vkm::SubmitInfo si;
            si.commandBuffers.push_back(workers[i].cbs[c]);
            // Only the last submission of a worker signals its fence.
            bool last = c + 1 == workers[i].cbs.size();
            vkm::check(vkm::queueSubmit(qs[i % queues], {si},
                                        last ? workers[i].fence
                                             : vkm::Fence()),
                       "queueSubmit");
        }
    }
    std::vector<vkm::Fence> fences;
    for (const Worker &w : workers)
        fences.push_back(w.fence);
    vkm::check(vkm::waitForFences(ctx.device, fences), "waitForFences");
    return ctx.now() - t0;
}

} // namespace

int
main()
{
    const sim::DeviceSpec &dev = sim::gtx1050ti();
    std::printf("Ablation: transfer queues and multiple compute queues "
                "(%s)\n\n",
                dev.name.c_str());

    double same_q = transferQueuePart(dev, false);
    double xfer_q = transferQueuePart(dev, true);
    harness::Table t1({"large copy placed on", "wall (sim)",
                       "speedup"});
    t1.addRow({"compute queue (serialised)", formatNs(same_q), "1.00x"});
    t1.addRow({"transfer queue (overlapped)", formatNs(xfer_q),
               harness::fmtF(same_q / xfer_q, 2) + "x"});
    std::printf("%s\n", t1.render().c_str());

    harness::Table t2({"4 independent kernels on", "submit strategy",
                       "wall (sim)", "speedup"});
    double base = 0;
    for (uint32_t queues : {1u, 4u}) {
        for (SubmitStrategy s :
             {SubmitStrategy::Batched, SubmitStrategy::ReRecord}) {
            double ns = multiQueuePart(dev, queues, s);
            if (base == 0)
                base = ns;
            t2.addRow({strprintf("%u compute queue%s", queues,
                                 queues == 1 ? "" : "s"),
                       suite::strategyName(s), formatNs(ns),
                       harness::fmtF(base / ns, 2) + "x"});
        }
    }
    std::printf("%s\n", t2.render().c_str());
    std::printf("paper: use transfer queues for large copies; use "
                "multiple compute queues for better utilisation\n");
    return 0;
}

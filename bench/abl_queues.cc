/**
 * @file
 * Ablation (paper Sec. VI-B, last two recommendations): use dedicated
 * transfer queues for large copies, and spread independent kernels
 * over multiple compute queues.
 *
 * Part 1: a large upload executed on the compute queue serialised
 * with a compute pass, vs on the transfer queue overlapped with it.
 * Part 2: the real dag workloads (nn, kmeans — suite benchmarks with
 * declared per-step dependencies) swept over queue count x submission
 * strategy through the shared multi-queue Vulkan runner.  Every cell
 * validates against the CPU reference and the host arrays are checked
 * bit-identical across queue counts: queues move only the simulated
 * timeline, never the results.
 *
 * `--smoke` shrinks the sizes and the queue axis for CI.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/strutil.h"
#include "harness/report.h"
#include "kernels/kernels.h"
#include "suite/benchmark.h"
#include "suite/vkhelp.h"
#include "suite/workload.h"

using namespace vcb;
using suite::HostArrays;
using suite::RunResult;
using suite::SubmitStrategy;
using suite::VkContext;
using suite::VkKernel;
using suite::Workload;
using suite::WorkloadOptions;

namespace {

/** A compute pass: several nn_euclid dispatches over n records,
 *  recorded into one command buffer. */
void
recordComputePass(VkKernel &k, vkm::CommandBuffer cb,
                  vkm::DescriptorSet set, uint32_t n, uint32_t repeats)
{
    vkm::check(vkm::beginCommandBuffer(cb), "beginCommandBuffer");
    vkm::cmdBindPipeline(cb, k.pipeline);
    vkm::cmdBindDescriptorSet(cb, k.layout, 0, set);
    uint32_t push[3] = {n, 0x42480000u /*50.f*/, 0x42b40000u /*90.f*/};
    vkm::cmdPushConstants(cb, k.layout, 0, 12, push);
    for (uint32_t i = 0; i < repeats; ++i) {
        vkm::cmdDispatch(cb, (uint32_t)ceilDiv(n, 256), 1, 1);
        vkm::cmdPipelineBarrier(cb);
    }
    vkm::check(vkm::endCommandBuffer(cb), "endCommandBuffer");
}

double
transferQueuePart(const sim::DeviceSpec &dev, bool use_transfer_queue)
{
    const uint32_t n = 1u << 20;
    VkContext ctx = VkContext::create(dev);
    VkKernel k;
    std::string err = suite::createVkKernel(ctx, kernels::buildNnEuclid(),
                                            &k);
    VCB_ASSERT(err.empty(), "%s", err.c_str());

    uint64_t bytes = uint64_t(n) * 4;
    auto b_lat = ctx.createDeviceBuffer(bytes);
    auto b_lng = ctx.createDeviceBuffer(bytes);
    auto b_dist = ctx.createDeviceBuffer(bytes);
    auto b_upload = ctx.createDeviceBuffer(bytes * 4); // unrelated data
    auto staging = ctx.createHostBuffer(bytes * 4);
    auto set = makeDescriptorSet(ctx, k,
                                 {{0, b_lat}, {1, b_lng}, {2, b_dist}});

    // Compute on the compute queue.
    vkm::CommandBuffer compute_cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, ctx.cmdPool,
                                          &compute_cb),
               "allocateCommandBuffer");
    recordComputePass(k, compute_cb, set, n, 8);

    // The big copy, recorded separately.
    vkm::CommandPool copy_pool;
    vkm::check(vkm::createCommandPool(
                   ctx.device, {use_transfer_queue ? 1u : 0u},
                   &copy_pool),
               "createCommandPool");
    vkm::CommandBuffer copy_cb;
    vkm::check(vkm::allocateCommandBuffer(ctx.device, copy_pool,
                                          &copy_cb),
               "allocateCommandBuffer");
    vkm::check(vkm::beginCommandBuffer(copy_cb), "beginCommandBuffer");
    vkm::cmdCopyBuffer(copy_cb, staging, b_upload, {0, 0, bytes * 4});
    vkm::check(vkm::endCommandBuffer(copy_cb), "endCommandBuffer");

    vkm::Queue copy_queue =
        use_transfer_queue ? ctx.transferQueue : ctx.queue;

    vkm::Fence f1, f2;
    vkm::check(vkm::createFence(ctx.device, &f1), "createFence");
    vkm::check(vkm::createFence(ctx.device, &f2), "createFence");

    double t0 = ctx.now();
    vkm::SubmitInfo si_copy;
    si_copy.commandBuffers.push_back(copy_cb);
    vkm::check(vkm::queueSubmit(copy_queue, {si_copy}, f1),
               "queueSubmit");
    vkm::SubmitInfo si_comp;
    si_comp.commandBuffers.push_back(compute_cb);
    vkm::check(vkm::queueSubmit(ctx.queue, {si_comp}, f2), "queueSubmit");
    vkm::check(vkm::waitForFences(ctx.device, {f1, f2}),
               "waitForFences");
    return ctx.now() - t0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    const sim::DeviceSpec &dev = sim::gtx1050ti();
    std::printf("Ablation: transfer queues and multiple compute queues "
                "(%s)\n\n",
                dev.name.c_str());

    double same_q = transferQueuePart(dev, false);
    double xfer_q = transferQueuePart(dev, true);
    harness::Table t1({"large copy placed on", "wall (sim)",
                       "speedup"});
    t1.addRow({"compute queue (serialised)", formatNs(same_q), "1.00x"});
    t1.addRow({"transfer queue (overlapped)", formatNs(xfer_q),
               harness::fmtF(same_q / xfer_q, 2) + "x"});
    std::printf("%s\n", t1.render().c_str());

    // Part 2: real dag workloads over queue count x strategy.  Sizes
    // are paper-scale so per-chunk kernel time dominates submission
    // overhead (smoke shrinks them to keep CI fast).
    const std::map<std::string, suite::SizeConfig> sizes = {
        {"nn", smoke ? suite::SizeConfig{"256K", {262144}}
                     : suite::SizeConfig{"16M", {2097152}}},
        {"kmeans", smoke ? suite::SizeConfig{"16K", {16384, 4, 5}}
                         : suite::SizeConfig{"64K", {65536, 4, 5}}},
    };
    const std::vector<uint32_t> queue_axis =
        smoke ? std::vector<uint32_t>{1, 4}
              : std::vector<uint32_t>{1, 2, 4, 8};
    const SubmitStrategy strategies[] = {SubmitStrategy::RecordOnce,
                                         SubmitStrategy::ReRecord};

    harness::Table t2({"workload", "strategy", "queues", "kernel region",
                       "busy/elapsed", "speedup"});
    bool identical = true;
    for (const auto &[name, cfg] : sizes) {
        Workload w = suite::byName(name).workload(cfg);
        VCB_ASSERT(w.dag, "%s is not a dag workload", name.c_str());
        HostArrays golden;
        bool have_golden = false;
        for (SubmitStrategy strat : strategies) {
            double base = 0;
            for (uint32_t q : queue_axis) {
                WorkloadOptions opts;
                opts.strategy = strat;
                opts.queueCount = q;
                HostArrays host;
                RunResult r =
                    suite::runWorkloadVulkan(w, dev, opts, &host);
                VCB_ASSERT(r.ok, "%s: %s", name.c_str(),
                           r.skipReason.c_str());
                VCB_ASSERT(r.validated, "%s q=%u: %s", name.c_str(), q,
                           r.validationError.c_str());
                if (!have_golden) {
                    golden = std::move(host);
                    have_golden = true;
                } else if (host != golden) {
                    identical = false;
                }
                if (base == 0)
                    base = r.kernelRegionNs;
                t2.addRow({name, suite::strategyName(strat),
                           strprintf("%u", r.queuesUsed),
                           formatNs(r.kernelRegionNs),
                           harness::fmtF(r.deviceBusyNs /
                                             r.kernelRegionNs,
                                         2),
                           harness::fmtF(base / r.kernelRegionNs, 2) +
                               "x"});
            }
        }
    }
    std::printf("%s\n", t2.render().c_str());
    std::printf("outputs bit-identical across queue counts and "
                "strategies: %s\n",
                identical ? "yes" : "NO — BUG");
    std::printf("paper: use transfer queues for large copies; use "
                "multiple compute queues for better utilisation\n");
    return identical ? 0 : 1;
}
